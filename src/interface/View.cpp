//===- interface/View.cpp -------------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "interface/View.h"

#include <algorithm>
#include <cassert>
#include <cctype>

using namespace argus;

ArgusInterface::ArgusInterface(const Program &Prog, const InferenceTree &Tree,
                               std::vector<IGoalId> Ranking)
    : Prog(&Prog), Tree(&Tree), Ranking(std::move(Ranking)) {}

ArgusInterface::ArgusInterface(const Program &Prog, const InferenceTree &Tree)
    : ArgusInterface(Prog, Tree, rankByInertia(Prog, Tree).Order) {}

ArgusInterface::FoldKey ArgusInterface::keyFor(size_t LeafIndex,
                                               IGoalId Goal) const {
  return (static_cast<uint64_t>(LeafIndex) << 32) | Goal.value();
}

TypePrinter ArgusInterface::printerFor(IGoalId Goal) const {
  PrintOptions Opts;
  Opts.FullPaths = false;
  Opts.DisambiguateShortNames = true; // Argus never prints misleadingly
                                      // identical short names.
  Opts.ElideArgs = TypeExpanded.count(Goal.value()) == 0;
  return TypePrinter(*Prog, Opts);
}

static const char *resultMarker(EvalResult Result) {
  switch (Result) {
  case EvalResult::Yes:
    return "[ok]";
  case EvalResult::No:
    return "[x]";
  case EvalResult::Maybe:
    return "[?]";
  case EvalResult::Overflow:
    return "[loop]";
  }
  return "[?]";
}

std::string ArgusInterface::renderGoal(IGoalId Goal) const {
  const IdealGoal &Node = Tree->goal(Goal);
  TypePrinter Printer = printerFor(Goal);
  return std::string(resultMarker(Node.Result)) + " " +
         Printer.print(Node.Pred);
}

std::string ArgusInterface::renderCandidate(ICandId Cand) const {
  const IdealCandidate &Node = Tree->candidate(Cand);
  TypePrinter Printer(*Prog);
  switch (Node.Kind) {
  case CandidateKind::Impl:
    return "via " + Printer.printImplFull(Prog->impl(Node.Impl));
  case CandidateKind::ParamEnv:
    return "via assumption " + Printer.print(Node.Assumption);
  case CandidateKind::Builtin:
    return "via builtin (" + Prog->session().text(Node.BuiltinName) + ")";
  }
  return "via ?";
}

void ArgusInterface::buildBottomUpRows(std::vector<ViewRow> &Rows) const {
  for (size_t Leaf = 0; Leaf != Ranking.size(); ++Leaf) {
    IGoalId Goal = Ranking[Leaf];
    uint32_t Indent = 0;
    for (;;) {
      if (Budget && Budget->tick())
        return; // Keep the rows built so far.
      const IdealGoal &Node = Tree->goal(Goal);
      ViewRow Row;
      Row.RowKind = ViewRow::Kind::Goal;
      Row.Goal = Goal;
      Row.Indent = Indent;
      Row.Text = renderGoal(Goal);
      Row.Result = Node.Result;
      Row.Expandable = Node.Parent.isValid();
      Row.Expanded =
          Row.Expandable && ExpandedBottomUp.count(keyFor(Leaf, Goal)) != 0;
      Rows.push_back(Row);
      RowKeys.push_back(keyFor(Leaf, Goal));
      RowGoals.push_back(Goal);

      if (!Row.Expanded || !Node.Parent.isValid())
        break;

      // Unfold one step towards the root: the candidate (impl) this goal
      // served, then the parent goal.
      ICandId Parent = Node.Parent;
      ViewRow CandRow;
      CandRow.RowKind = ViewRow::Kind::Candidate;
      CandRow.Cand = Parent;
      CandRow.Indent = Indent + 1;
      CandRow.Text = renderCandidate(Parent);
      CandRow.Result = Tree->candidate(Parent).Result;
      Rows.push_back(CandRow);
      RowKeys.push_back(0);
      RowGoals.push_back(IGoalId::invalid());

      Goal = Tree->candidate(Parent).Parent;
      Indent += 1;
    }
  }
}

void ArgusInterface::appendGoalTopDown(std::vector<ViewRow> &Rows,
                                       IGoalId Goal,
                                       uint32_t Indent) const {
  if (Budget && Budget->tick())
    return; // Keep the rows built so far.
  const IdealGoal &Node = Tree->goal(Goal);
  ViewRow Row;
  Row.RowKind = ViewRow::Kind::Goal;
  Row.Goal = Goal;
  Row.Indent = Indent;
  Row.Text = renderGoal(Goal);
  Row.Result = Node.Result;
  Row.Expandable = !Node.Candidates.empty();
  Row.Expanded =
      Row.Expandable && ExpandedTopDown.count(Goal.value()) != 0;
  Rows.push_back(Row);
  RowKeys.push_back(Goal.value());
  RowGoals.push_back(Goal);

  if (!Row.Expanded)
    return;
  for (ICandId Cand : Node.Candidates) {
    ViewRow CandRow;
    CandRow.RowKind = ViewRow::Kind::Candidate;
    CandRow.Cand = Cand;
    CandRow.Indent = Indent + 1;
    CandRow.Text = renderCandidate(Cand);
    CandRow.Result = Tree->candidate(Cand).Result;
    Rows.push_back(CandRow);
    RowKeys.push_back(0);
    RowGoals.push_back(IGoalId::invalid());
    for (IGoalId Sub : Tree->candidate(Cand).SubGoals)
      appendGoalTopDown(Rows, Sub, Indent + 2);
  }
}

void ArgusInterface::buildTopDownRows(std::vector<ViewRow> &Rows) const {
  if (Tree->rootId().isValid())
    appendGoalTopDown(Rows, Tree->rootId(), 0);
}

std::vector<ViewRow> ArgusInterface::rows() const {
  std::vector<ViewRow> Rows;
  RowKeys.clear();
  RowGoals.clear();

  ViewRow Header;
  Header.RowKind = ViewRow::Kind::Header;
  Header.Text = Active == ViewKind::BottomUp ? "Bottom Up" : "Top Down";
  Rows.push_back(Header);
  RowKeys.push_back(0);
  RowGoals.push_back(IGoalId::invalid());

  if (Active == ViewKind::BottomUp)
    buildBottomUpRows(Rows);
  else
    buildTopDownRows(Rows);
  return Rows;
}

bool ArgusInterface::toggleExpand(size_t RowIndex) {
  std::vector<ViewRow> Current = rows();
  if (RowIndex >= Current.size())
    return false;
  const ViewRow &Row = Current[RowIndex];
  if (Row.RowKind != ViewRow::Kind::Goal || !Row.Expandable)
    return false;
  if (Active == ViewKind::BottomUp) {
    FoldKey Key = RowKeys[RowIndex];
    if (!ExpandedBottomUp.erase(Key))
      ExpandedBottomUp.insert(Key);
  } else {
    uint32_t Key = Row.Goal.value();
    if (!ExpandedTopDown.erase(Key))
      ExpandedTopDown.insert(Key);
  }
  return true;
}

void ArgusInterface::expandAll() {
  // Top-down: every goal with candidates.
  for (size_t I = 0; I != Tree->numGoals(); ++I) {
    IGoalId Id(static_cast<uint32_t>(I));
    if (!Tree->goal(Id).Candidates.empty())
      ExpandedTopDown.insert(Id.value());
  }
  // Bottom-up: every step of every leaf chain.
  for (size_t Leaf = 0; Leaf != Ranking.size(); ++Leaf)
    for (IGoalId Goal : Tree->pathToRoot(Ranking[Leaf]))
      if (Tree->goal(Goal).Parent.isValid())
        ExpandedBottomUp.insert(keyFor(Leaf, Goal));
}

void ArgusInterface::collapseAll() {
  ExpandedBottomUp.clear();
  ExpandedTopDown.clear();
}

bool ArgusInterface::toggleTypeEllipsis(size_t RowIndex) {
  std::vector<ViewRow> Current = rows();
  if (RowIndex >= Current.size() ||
      Current[RowIndex].RowKind != ViewRow::Kind::Goal)
    return false;
  uint32_t Key = Current[RowIndex].Goal.value();
  if (!TypeExpanded.erase(Key))
    TypeExpanded.insert(Key);
  return true;
}

void ArgusInterface::collectNames(TypeId Ty, std::vector<Symbol> &Out) const {
  const Type &Node = Prog->session().types().get(Ty);
  switch (Node.Kind) {
  case TypeKind::Adt:
  case TypeKind::FnDef:
    Out.push_back(Node.Name);
    break;
  case TypeKind::Projection:
    Out.push_back(Node.TraitName);
    break;
  default:
    break;
  }
  for (TypeId Arg : Node.Args)
    collectNames(Arg, Out);
}

std::vector<Symbol> ArgusInterface::namesInGoal(IGoalId Goal) const {
  const Predicate &Pred = Tree->goal(Goal).Pred;
  std::vector<Symbol> Names;
  if (Pred.Subject.isValid())
    collectNames(Pred.Subject, Names);
  if (Pred.Kind == PredicateKind::Trait && Pred.Trait.isValid())
    Names.push_back(Pred.Trait);
  for (TypeId Arg : Pred.Args)
    collectNames(Arg, Names);
  if (Pred.Rhs.isValid())
    collectNames(Pred.Rhs, Names);
  // Stable dedup.
  std::vector<Symbol> Unique;
  for (Symbol Name : Names)
    if (std::find(Unique.begin(), Unique.end(), Name) == Unique.end())
      Unique.push_back(Name);
  return Unique;
}

std::string ArgusInterface::hoverMinibuffer(size_t RowIndex) const {
  std::vector<ViewRow> Current = rows();
  if (RowIndex >= Current.size() ||
      Current[RowIndex].RowKind != ViewRow::Kind::Goal)
    return std::string();
  std::string Out;
  for (Symbol Name : namesInGoal(Current[RowIndex].Goal)) {
    if (!Out.empty())
      Out.push_back('\n');
    Out += Prog->session().text(Name);
  }
  return Out;
}

std::vector<std::string> ArgusInterface::implsPopup(size_t RowIndex) const {
  std::vector<ViewRow> Current = rows();
  std::vector<std::string> Out;
  if (RowIndex >= Current.size() ||
      Current[RowIndex].RowKind != ViewRow::Kind::Goal)
    return Out;
  const Predicate &Pred = Tree->goal(Current[RowIndex].Goal).Pred;
  if (Pred.Kind != PredicateKind::Trait)
    return Out;
  TypePrinter Printer(*Prog);
  for (ImplId Impl : Prog->implsOf(Pred.Trait))
    Out.push_back(Printer.printImplFull(Prog->impl(Impl)));
  return Out;
}

std::vector<DefinitionLink>
ArgusInterface::definitionLinks(size_t RowIndex) const {
  std::vector<ViewRow> Current = rows();
  std::vector<DefinitionLink> Out;
  if (RowIndex >= Current.size() ||
      Current[RowIndex].RowKind != ViewRow::Kind::Goal)
    return Out;
  for (Symbol Name : namesInGoal(Current[RowIndex].Goal)) {
    Span Target;
    if (const TypeCtorDecl *Ctor = Prog->findTypeCtor(Name))
      Target = Ctor->Sp;
    else if (const TraitDecl *Trait = Prog->findTrait(Name))
      Target = Trait->Sp;
    else if (const FnDecl *Fn = Prog->findFn(Name))
      Target = Fn->Sp;
    if (Target.isValid())
      Out.push_back(DefinitionLink{Prog->session().text(Name), Target});
  }
  return Out;
}

static bool containsInsensitive(std::string_view Haystack,
                                std::string_view Needle) {
  if (Needle.empty())
    return true;
  auto Lower = [](char C) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  };
  for (size_t I = 0; I + Needle.size() <= Haystack.size(); ++I) {
    bool Match = true;
    for (size_t J = 0; J != Needle.size() && Match; ++J)
      Match = Lower(Haystack[I + J]) == Lower(Needle[J]);
    if (Match)
      return true;
  }
  return false;
}

std::vector<IGoalId> ArgusInterface::searchGoals(
    std::string_view Needle) const {
  std::vector<IGoalId> Matches;
  TypePrinter Printer(*Prog, [] {
    PrintOptions Opts;
    Opts.DisambiguateShortNames = true;
    return Opts;
  }());
  for (size_t I = 0; I != Tree->numGoals(); ++I) {
    IGoalId Id(static_cast<uint32_t>(I));
    if (containsInsensitive(Printer.print(Tree->goal(Id).Pred), Needle))
      Matches.push_back(Id);
  }
  return Matches;
}

bool ArgusInterface::revealGoal(IGoalId Goal) {
  if (Active == ViewKind::TopDown) {
    // Unfold every ancestor (and the node itself, so its children show
    // context).
    for (IGoalId Ancestor : Tree->pathToRoot(Goal))
      if (!Tree->goal(Ancestor).Candidates.empty())
        ExpandedTopDown.insert(Ancestor.value());
    return true;
  }
  // Bottom-up: find a ranked leaf whose chain passes through the goal,
  // then unfold that chain up to (and including) the step revealing it.
  for (size_t Leaf = 0; Leaf != Ranking.size(); ++Leaf) {
    std::vector<IGoalId> Chain = Tree->pathToRoot(Ranking[Leaf]);
    auto It = std::find(Chain.begin(), Chain.end(), Goal);
    if (It == Chain.end())
      continue;
    for (auto Step = Chain.begin(); Step != It; ++Step)
      if (Tree->goal(*Step).Parent.isValid())
        ExpandedBottomUp.insert(keyFor(Leaf, *Step));
    return true;
  }
  return false;
}

size_t ArgusInterface::rowOf(IGoalId Goal) const {
  std::vector<ViewRow> Rows = rows();
  for (size_t I = 0; I != Rows.size(); ++I)
    if (Rows[I].RowKind == ViewRow::Kind::Goal && Rows[I].Goal == Goal)
      return I;
  return Rows.size();
}

std::string ArgusInterface::renderText() const {
  std::string Out;
  for (const ViewRow &Row : rows()) {
    if (Row.RowKind == ViewRow::Kind::Header) {
      Out += "== " + Row.Text + " ==\n";
      continue;
    }
    Out.append(2 * Row.Indent, ' ');
    if (Row.RowKind == ViewRow::Kind::Goal && Row.Expandable)
      Out += Row.Expanded ? "v " : "> ";
    else
      Out += "  ";
    Out += Row.Text;
    Out.push_back('\n');
  }
  return Out;
}
