//===- interface/HTMLExport.cpp -------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "interface/HTMLExport.h"

#include "analysis/Inertia.h"
#include "diagnostics/Diagnostics.h"
#include "tlang/Printer.h"

#include <memory>

using namespace argus;

std::string argus::escapeHTML(std::string_view Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    switch (C) {
    case '&':
      Out += "&amp;";
      break;
    case '<':
      Out += "&lt;";
      break;
    case '>':
      Out += "&gt;";
      break;
    case '"':
      Out += "&quot;";
      break;
    default:
      Out.push_back(C);
    }
  }
  return Out;
}

namespace {

const char *Stylesheet = R"(
body { font-family: ui-monospace, Menlo, Consolas, monospace;
       background: #1e1e2e; color: #cdd6f4; margin: 2em; }
h1 { font-size: 1.2em; } h2 { font-size: 1em; color: #89b4fa; }
details { margin-left: 1.2em; border-left: 1px solid #45475a;
          padding-left: .5em; }
summary { cursor: pointer; padding: 2px 4px; border-radius: 4px; }
summary:hover { background: #313244; }
.ok { color: #a6e3a1; } .no { color: #f38ba8; }
.maybe { color: #f9e2af; } .loop { color: #fab387; }
.impl { color: #94a3b8; font-style: italic; margin-left: 1.6em; }
.leaf { margin-left: 1.2em; padding: 2px 4px; }
abbr { text-decoration: underline dotted #89b4fa; cursor: help; }
pre.diag { background: #11111b; padding: 1em; border-radius: 6px;
           overflow-x: auto; }
.weight { color: #9399b2; font-size: .85em; }
ol li { margin: .25em 0; }
)";

class HTMLBuilder {
public:
  HTMLBuilder(const Program &Prog, const InferenceTree &Tree,
              const HTMLExportOptions &Opts)
      : Prog(Prog), Tree(Tree), Opts(Opts) {
    PrintOptions Short;
    Short.DisambiguateShortNames = true;
    ShortPrinter = std::make_unique<TypePrinter>(Prog, Short);
    PrintOptions Full;
    Full.FullPaths = true;
    FullPrinter = std::make_unique<TypePrinter>(Prog, Full);
  }

  std::string build();

private:
  const char *resultClass(EvalResult Result) const {
    switch (Result) {
    case EvalResult::Yes:
      return "ok";
    case EvalResult::No:
      return "no";
    case EvalResult::Maybe:
      return "maybe";
    case EvalResult::Overflow:
      return "loop";
    }
    return "maybe";
  }

  const char *resultMark(EvalResult Result) const {
    switch (Result) {
    case EvalResult::Yes:
      return "&#10003;"; // Check mark.
    case EvalResult::No:
      return "&#10007;"; // Ballot X.
    case EvalResult::Maybe:
      return "?";
    case EvalResult::Overflow:
      return "&#8734;"; // Infinity.
    }
    return "?";
  }

  /// A predicate with hover-able full paths: short text wrapped in an
  /// <abbr> whose title is the fully qualified rendering.
  std::string predicate(const Predicate &Pred) const {
    return "<abbr title=\"" + escapeHTML(FullPrinter->print(Pred)) +
           "\">" + escapeHTML(ShortPrinter->print(Pred)) + "</abbr>";
  }

  void goalNode(std::string &Out, IGoalId Id, uint32_t Depth);

  const Program &Prog;
  const InferenceTree &Tree;
  const HTMLExportOptions &Opts;
  std::unique_ptr<TypePrinter> ShortPrinter;
  std::unique_ptr<TypePrinter> FullPrinter;
};

void HTMLBuilder::goalNode(std::string &Out, IGoalId Id, uint32_t Depth) {
  const IdealGoal &Goal = Tree.goal(Id);
  std::string Label = "<span class=\"" +
                      std::string(resultClass(Goal.Result)) + "\">" +
                      resultMark(Goal.Result) + "</span> " +
                      predicate(Goal.Pred);
  if (Goal.Candidates.empty()) {
    Out += "<div class=\"leaf\">" + Label + "</div>\n";
    return;
  }
  Out += "<details";
  if (Depth < Opts.OpenDepth)
    Out += " open";
  Out += "><summary>" + Label + "</summary>\n";
  for (ICandId CandId : Goal.Candidates) {
    const IdealCandidate &Cand = Tree.candidate(CandId);
    std::string Via;
    switch (Cand.Kind) {
    case CandidateKind::Impl:
      Via = escapeHTML(ShortPrinter->printImplFull(Prog.impl(Cand.Impl)));
      break;
    case CandidateKind::ParamEnv:
      Via = "assumption " +
            escapeHTML(ShortPrinter->print(Cand.Assumption));
      break;
    case CandidateKind::Builtin:
      Via = "builtin (" +
            escapeHTML(Prog.session().text(Cand.BuiltinName)) + ")";
      break;
    }
    Out += "<div class=\"impl\">via " + Via + "</div>\n";
    for (IGoalId Sub : Cand.SubGoals)
      goalNode(Out, Sub, Depth + 1);
  }
  Out += "</details>\n";
}

std::string HTMLBuilder::build() {
  std::string Out;
  Out += "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n";
  Out += "<title>" + escapeHTML(Opts.Title) + "</title>\n";
  Out += "<style>" + std::string(Stylesheet) + "</style></head><body>\n";
  Out += "<h1>" + escapeHTML(Opts.Title) + "</h1>\n";

  // Bottom-up: the ranked failure list with categories and weights.
  InertiaResult Inertia = rankByInertia(Prog, Tree);
  Out += "<h2>Bottom up &mdash; failed obligations, ranked by "
         "inertia</h2>\n<ol>\n";
  for (size_t I = 0; I != Inertia.Order.size(); ++I) {
    const IdealGoal &Goal = Tree.goal(Inertia.Order[I]);
    Out += "<li><span class=\"" + std::string(resultClass(Goal.Result)) +
           "\">" + resultMark(Goal.Result) + "</span> " +
           predicate(Goal.Pred) + " <span class=\"weight\">(" +
           Inertia.Kinds[I].tagName() + ", weight " +
           std::to_string(Inertia.Weights[I]) + ")</span></li>\n";
  }
  Out += "</ol>\n";

  // Minimum correction subsets.
  Out += "<h2>Minimum correction subsets</h2>\n<ol>\n";
  for (size_t I = 0; I != Inertia.MCS.size(); ++I) {
    Out += "<li>score " + std::to_string(Inertia.ConjunctScores[I]) +
           ": { ";
    for (size_t J = 0; J != Inertia.MCS[I].size(); ++J) {
      if (J)
        Out += ", ";
      Out += predicate(Tree.goal(Inertia.MCS[I][J]).Pred);
    }
    Out += " }</li>\n";
  }
  Out += "</ol>\n";

  // Top-down: the full tree as nested <details>.
  Out += "<h2>Top down &mdash; the inference tree</h2>\n";
  if (Tree.rootId().isValid())
    goalNode(Out, Tree.rootId(), 0);

  if (Opts.IncludeDiagnostic) {
    DiagnosticRenderer Renderer(Prog);
    Out += "<h2>For contrast: the static diagnostic</h2>\n";
    Out += "<pre class=\"diag\">" +
           escapeHTML(Renderer.render(Tree).Text) + "</pre>\n";
  }

  Out += "</body></html>\n";
  return Out;
}

} // namespace

std::string argus::treeToHTML(const Program &Prog, const InferenceTree &Tree,
                              HTMLExportOptions Opts) {
  HTMLBuilder Builder(Prog, Tree, Opts);
  return Builder.build();
}
