//===- solver/ProofTree.h - Raw trait inference trees ---------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The raw AND/OR proof forest produced by the trait solver: the "Trait
/// Inference Tree" of Figure 5. An evaluated predicate (GoalNode) holds a
/// set of evaluated candidates; a candidate (CandidateNode) holds the
/// nested predicates its where-clauses require. A predicate succeeds if
/// one candidate succeeds; a candidate succeeds if all its subgoals do.
///
/// This is the *raw* structure: it still contains internal predicate
/// kinds, stateful normalization nodes, and one snapshot per fixpoint
/// round. The extract library turns it into the idealized tree.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_SOLVER_PROOFTREE_H
#define ARGUS_SOLVER_PROOFTREE_H

#include "tlang/Decl.h"
#include "tlang/Predicate.h"

#include <deque>
#include <vector>

namespace argus {

/// The evaluation result lattice (Figure 5): yes | no | maybe, plus
/// Overflow, which the Rust compiler surfaces as its own error (E0275)
/// and which Argus renders distinctly on cycle nodes.
enum class EvalResult : uint8_t { Yes, Maybe, No, Overflow };

/// Result of conjoining two subgoal results (a candidate needs all of its
/// subgoals): any failure dominates, Overflow dominates No.
EvalResult conjoin(EvalResult A, EvalResult B);

/// Result of disjoining two candidate results (a goal needs one
/// candidate): any success dominates; Maybe beats failure; Overflow beats
/// plain No so cycles are reported rather than swallowed.
EvalResult disjoin(EvalResult A, EvalResult B);

const char *evalResultName(EvalResult Result);

inline bool succeeded(EvalResult Result) { return Result == EvalResult::Yes; }
inline bool failed(EvalResult Result) {
  return Result == EvalResult::No || Result == EvalResult::Overflow;
}

struct GoalNodeTag {};
using GoalNodeId = Id<GoalNodeTag>;
struct CandNodeTag {};
using CandNodeId = Id<CandNodeTag>;

/// How a candidate was assembled for a goal.
enum class CandidateKind : uint8_t {
  Impl,     ///< A user impl block whose header unified with the goal.
  ParamEnv, ///< A where-clause assumption in the goal's environment.
  Builtin,  ///< Compiler-provided: fn-trait implementations for fn items
            ///< and fn pointers, Sized, region rules.
};

/// An evaluated predicate: one node of the AND/OR tree.
struct GoalNode {
  GoalNodeId Id;
  Predicate Pred; ///< As evaluated (inference-resolved at evaluation time).
  EvalResult Result = EvalResult::Maybe;
  std::vector<CandNodeId> Candidates;

  CandNodeId ParentCandidate; ///< Invalid for roots.
  uint32_t Depth = 0;

  /// Provenance: the span of the impl/goal/trait declaration whose
  /// where-clause introduced this obligation.
  Span Origin;

  /// Which program goal this evaluation ultimately serves, and which
  /// fixpoint round produced it (roots only; see SolveOutcome).
  uint32_t GoalIndex = 0;
  uint32_t SnapshotRound = 0;

  /// NormalizesTo goals are stateful (Section 4): the value written into
  /// the output variable, captured after the subtree executed.
  TypeId NormalizedValue = TypeId::invalid();

  /// For successful goals: the candidate that was selected (and whose
  /// bindings were committed).
  CandNodeId SelectedCandidate;

  /// True if this node's result came from the evaluation cache (the
  /// memoization ablation); such nodes have no candidates.
  bool FromCache = false;
};

/// An evaluated candidate: the OR-branches of a goal.
struct CandidateNode {
  CandNodeId Id;
  CandidateKind Kind = CandidateKind::Impl;
  ImplId Impl;        ///< Kind == Impl.
  Symbol BuiltinName; ///< Kind == Builtin: "fn-item", "sized", ...
  Predicate Assumption; ///< Kind == ParamEnv: the matching assumption.
  EvalResult Result = EvalResult::Maybe;
  std::vector<GoalNodeId> SubGoals;
  GoalNodeId Parent;
};

/// Owns every node produced while solving one program.
class ProofForest {
public:
  GoalNode &goal(GoalNodeId Id);
  const GoalNode &goal(GoalNodeId Id) const;
  CandidateNode &candidate(CandNodeId Id);
  const CandidateNode &candidate(CandNodeId Id) const;

  GoalNodeId makeGoal();
  CandNodeId makeCandidate();

  size_t numGoals() const { return Goals.size(); }
  size_t numCandidates() const { return Candidates.size(); }

  /// Total nodes (goals + candidates) reachable from \p Root.
  size_t subtreeSize(GoalNodeId Root) const;

  /// All failed goal leaves under \p Root: failed goals none of whose
  /// candidates contain a deeper failed goal. These are the "innermost
  /// failing predicates" of the bottom-up view.
  std::vector<GoalNodeId> failedLeaves(GoalNodeId Root) const;

private:
  // Deques keep node addresses stable while child nodes are created, so
  // the solver may hold references across makeGoal()/makeCandidate().
  std::deque<GoalNode> Goals;
  std::deque<CandidateNode> Candidates;
};

} // namespace argus

#endif // ARGUS_SOLVER_PROOFTREE_H
