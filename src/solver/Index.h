//===- solver/Index.h - Coherence-time candidate index builder -*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the Program-owned prebuilt candidate index (the solver-core
/// analogue of a SAT solver's watch lists plus inprocessing). The build
/// runs once per Program at coherence time and has two parts:
///
///  1. *Materialization*: every declared (trait, head-constructor) bucket
///     slice is computed up front with eager fingerprints and exact-match
///     plans, so goal evaluation walks exactly the impls that can unify
///     with its self type without ever touching the lazy slice memo.
///
///  2. *Subsumption* (inprocessing, `--no-subsume` to disable): a
///     reachability analysis over the program's declared goal shapes
///     proves that some impls can never assemble a candidate for any goal
///     the program can pose — their (trait, arity) pair is never queried,
///     or no reachable goal's self type root can equal their head. Those
///     impls are pruned from every bucket before solving starts. Pruning
///     is selection-invariant by construction: an impl that never
///     assembles leaves no trace in the proof forest, so trees are
///     byte-identical with pruning on or off. Impl pairs where one head
///     strictly generalizes another (a blanket shadowing a concrete impl)
///     are *detected* and surfaced as trace notes, but never pruned while
///     reachable — removing them would change candidate selection.
///
/// Contract: the subsumption proof quantifies over the Program's declared
/// goals and environments. Callers that feed ad-hoc predicates to
/// Solver::solveOne must do so against a Program without an installed
/// index (engine::Session only installs for whole-program solves).
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_SOLVER_INDEX_H
#define ARGUS_SOLVER_INDEX_H

#include "support/Governance.h"
#include "tlang/Program.h"

#include <cstdint>

namespace argus {

struct SolverIndexOptions {
  /// Run the inprocessing pass (reachability pruning + shadowed-pair
  /// detection). Off = materialization only; slices keep every impl.
  bool EnableSubsumption = true;

  /// Cooperative budget, polled per impl and per head-comparison pair. A
  /// stop mid-build discards the partial index (the caller falls back to
  /// the lazy slice path); it never installs a partially-pruned index.
  ExecutionBudget *Budget = nullptr;

  /// Cap on recorded trace notes; decisions past the cap still apply but
  /// are only counted.
  size_t MaxTraceNotes = 64;
};

struct SolverIndexStats {
  /// False when the budget stopped the build; nothing was installed.
  bool Completed = false;
  uint64_t ImplsSubsumed = 0;
  /// Reachable impl pairs where one head strictly generalizes the other
  /// (detected, surfaced in notes, never pruned).
  uint64_t ShadowedPairs = 0;
};

/// Analyses \p Prog and installs its prebuilt index (Program::
/// hasSolverIndex). Safe to call again after edits; each call rebuilds
/// from the current declarations.
SolverIndexStats
buildSolverIndex(Program &Prog,
                 const SolverIndexOptions &Opts = SolverIndexOptions());

} // namespace argus

#endif // ARGUS_SOLVER_INDEX_H
