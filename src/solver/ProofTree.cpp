//===- solver/ProofTree.cpp -----------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/ProofTree.h"

#include <cassert>

using namespace argus;

EvalResult argus::conjoin(EvalResult A, EvalResult B) {
  // Overflow > No > Maybe > Yes.
  if (A == EvalResult::Overflow || B == EvalResult::Overflow)
    return EvalResult::Overflow;
  if (A == EvalResult::No || B == EvalResult::No)
    return EvalResult::No;
  if (A == EvalResult::Maybe || B == EvalResult::Maybe)
    return EvalResult::Maybe;
  return EvalResult::Yes;
}

EvalResult argus::disjoin(EvalResult A, EvalResult B) {
  // Yes > Maybe > Overflow > No.
  if (A == EvalResult::Yes || B == EvalResult::Yes)
    return EvalResult::Yes;
  if (A == EvalResult::Maybe || B == EvalResult::Maybe)
    return EvalResult::Maybe;
  if (A == EvalResult::Overflow || B == EvalResult::Overflow)
    return EvalResult::Overflow;
  return EvalResult::No;
}

const char *argus::evalResultName(EvalResult Result) {
  switch (Result) {
  case EvalResult::Yes:
    return "yes";
  case EvalResult::Maybe:
    return "maybe";
  case EvalResult::No:
    return "no";
  case EvalResult::Overflow:
    return "overflow";
  }
  return "?";
}

GoalNode &ProofForest::goal(GoalNodeId Id) {
  assert(Id.isValid() && Id.value() < Goals.size() && "bad GoalNodeId");
  return Goals[Id.value()];
}

const GoalNode &ProofForest::goal(GoalNodeId Id) const {
  assert(Id.isValid() && Id.value() < Goals.size() && "bad GoalNodeId");
  return Goals[Id.value()];
}

CandidateNode &ProofForest::candidate(CandNodeId Id) {
  assert(Id.isValid() && Id.value() < Candidates.size() && "bad CandNodeId");
  return Candidates[Id.value()];
}

const CandidateNode &ProofForest::candidate(CandNodeId Id) const {
  assert(Id.isValid() && Id.value() < Candidates.size() && "bad CandNodeId");
  return Candidates[Id.value()];
}

GoalNodeId ProofForest::makeGoal() {
  GoalNodeId Id(static_cast<uint32_t>(Goals.size()));
  Goals.emplace_back();
  Goals.back().Id = Id;
  return Id;
}

CandNodeId ProofForest::makeCandidate() {
  CandNodeId Id(static_cast<uint32_t>(Candidates.size()));
  Candidates.emplace_back();
  Candidates.back().Id = Id;
  return Id;
}

size_t ProofForest::subtreeSize(GoalNodeId Root) const {
  const GoalNode &Node = goal(Root);
  size_t Size = 1;
  for (CandNodeId CandId : Node.Candidates) {
    ++Size;
    for (GoalNodeId Sub : candidate(CandId).SubGoals)
      Size += subtreeSize(Sub);
  }
  return Size;
}

/// Returns true if any goal in the subtree below (excluding) \p Node
/// failed.
static bool hasFailedDescendant(const ProofForest &Forest,
                                const GoalNode &Node) {
  for (CandNodeId CandId : Node.Candidates)
    for (GoalNodeId Sub : Forest.candidate(CandId).SubGoals) {
      const GoalNode &SubNode = Forest.goal(Sub);
      if (failed(SubNode.Result))
        return true;
      if (hasFailedDescendant(Forest, SubNode))
        return true;
    }
  return false;
}

static void collectFailedLeaves(const ProofForest &Forest, GoalNodeId Id,
                                std::vector<GoalNodeId> &Out) {
  const GoalNode &Node = Forest.goal(Id);
  if (failed(Node.Result) && !hasFailedDescendant(Forest, Node)) {
    Out.push_back(Id);
    return;
  }
  for (CandNodeId CandId : Node.Candidates)
    for (GoalNodeId Sub : Forest.candidate(CandId).SubGoals)
      collectFailedLeaves(Forest, Sub, Out);
}

std::vector<GoalNodeId> ProofForest::failedLeaves(GoalNodeId Root) const {
  std::vector<GoalNodeId> Out;
  collectFailedLeaves(*this, Root, Out);
  return Out;
}
