//===- solver/GoalCache.h - Cross-job goal-result cache -------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sharded, lock-striped cache from canonicalized goal keys to recorded
/// proof subtrees. The solver consults it after its overflow/cycle checks:
/// on a hit the stored subtree is spliced node-for-node into the consumer's
/// proof forest and the recorded inference-variable bindings are replayed,
/// so cached and uncached runs produce byte-identical trees, views, and
/// JSON at any thread count.
///
/// Keys and entries never reference a session's TypeArena or
/// StringInterner directly. Types and predicates are stored as canonical
/// u64 token streams (structural, arena-independent), and a 128-bit
/// fingerprint of the program source plus the solver flags that shape
/// proof trees isolates entries between distinct programs sharing one
/// batch-wide cache. Inference variables are tagged extern (an index into
/// the consumer's own variable space, resolved identically by key
/// equality) or intern (allocated inside the recorded subtree, re-based
/// onto fresh variables at splice time).
///
/// Cacheability is enforced at both ends: goals are only recorded when
/// their resolved predicate has no unresolved inference variables, and a
/// completed recording is rejected (never inserted) when its result is
/// ambiguous, any node overflowed, a budget stop or deadline fired
/// mid-subtree, or the subtree bound a variable it did not allocate.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_SOLVER_GOALCACHE_H
#define ARGUS_SOLVER_GOALCACHE_H

#include "solver/ProofTree.h"
#include "tlang/Predicate.h"
#include "tlang/TypeArena.h"

#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace argus {

/// Canonical token stream for a type, predicate, or environment.
using CacheEnc = std::vector<uint64_t>;

/// FNV-1a over u64 tokens; \p Salt separates hash domains (full
/// predicates vs NormalizesTo subjects vs environments).
uint64_t hashCacheEnc(const CacheEnc &Enc, uint64_t Salt);

/// Memo of raw-mode type encodings, indexed by TypeId. Arena types are
/// immutable and ids append-only, so a type's RawVars encoding never
/// changes for the lifetime of its arena; solvers keep one of these so
/// the per-goal key and stack-hash encodes of deep types degrade to a
/// token-span copy instead of a recursive arena walk.
struct TypeEncodeMemo {
  struct Rec {
    std::vector<uint64_t> Tokens;
    bool HasVar = false;
    bool Valid = false;
  };
  std::vector<Rec> ByType;

  Rec &slot(uint32_t Index) {
    if (Index >= ByType.size())
      ByType.resize(Index + 1);
    return ByType[Index];
  }
};

/// Encodes types/predicates into canonical token streams. Inference
/// variables with index >= VarsBase are tagged intern and stored relative
/// to the base; smaller indices are tagged extern and stored raw. Pass
/// RawVars to store every variable extern (used for keys and stack
/// hashes, where indices are meaningful in the consumer's own space).
class CacheEncoder {
public:
  static constexpr uint32_t RawVars = 0xFFFFFFFFu;

  /// \p Memo may only be shared between RawVars encoders over the same
  /// arena: frame-relative encodings re-base variable tokens, so their
  /// token spans are not reusable across VarsBase values.
  CacheEncoder(const TypeArena &Arena, uint32_t VarsBase,
               TypeEncodeMemo *Memo = nullptr)
      : Arena(&Arena), VarsBase(VarsBase),
        Memo(VarsBase == RawVars ? Memo : nullptr) {}

  void type(CacheEnc &Out, TypeId T);
  void pred(CacheEnc &Out, const Predicate &P);

  /// True if any inference variable token has been emitted since
  /// construction or the last resetSawVar().
  bool sawVar() const { return SawVar; }
  void resetSawVar() { SawVar = false; }

private:
  void typeUncached(CacheEnc &Out, TypeId T);

  const TypeArena *Arena;
  uint32_t VarsBase;
  TypeEncodeMemo *Memo = nullptr;
  bool SawVar = false;
};

/// Decodes canonical token streams back into a (possibly different)
/// arena. Intern-tagged variables are re-based onto \p VarsBase, the
/// index of the first variable the consumer allocated for the splice.
class CacheDecoder {
public:
  CacheDecoder(TypeArena &Arena, uint32_t VarsBase)
      : Arena(&Arena), VarsBase(VarsBase) {}

  TypeId type(const CacheEnc &In, size_t &Pos);
  Predicate pred(const CacheEnc &In, size_t &Pos);

  /// Decodes a variable token produced by CacheEncoder into an index in
  /// the consumer's variable space.
  uint32_t varIndex(uint64_t Token) const;

private:
  TypeArena *Arena;
  uint32_t VarsBase;
};

class GoalCache {
public:
  struct Config {
    unsigned Shards = 16;
    size_t Capacity = 65536; ///< Total entries across all shards.
  };

  static constexpr uint32_t NoId = 0xFFFFFFFFu;

  /// One recorded goal node, ids relative to the subtree: goal 0 is the
  /// root, candidate ids count from the first candidate the subtree
  /// created.
  struct GoalRec {
    CacheEnc Pred;
    EvalResult Result = EvalResult::Maybe;
    uint32_t RelDepth = 0;
    Span Origin;
    uint32_t ParentCandidate = NoId; ///< Unused for the root (caller-owned).
    uint32_t SelectedCandidate = NoId;
    std::vector<uint32_t> Candidates;
    CacheEnc NormalizedValue; ///< Empty = none.
    bool FromCache = false;
  };

  struct CandRec {
    CandidateKind Kind = CandidateKind::Builtin;
    ImplId Impl;
    Symbol BuiltinName; ///< Stored raw; see DESIGN.md on symbol stability.
    bool HasAssumption = false;
    CacheEnc Assumption;
    EvalResult Result = EvalResult::Maybe;
    uint32_t Parent = 0;
    std::vector<uint32_t> SubGoals;
  };

  /// One committed binding, in trail order. Var is a CacheEncoder
  /// variable token; Value is an encoded type.
  struct BindRec {
    uint64_t Var = 0;
    CacheEnc Value;
  };

  struct Entry {
    uint32_t MaxRelDepth = 0;   ///< Deepest node depth minus root depth.
    uint64_t TotalEvals = 0;    ///< Goal evaluations in the subtree (root incl).
    uint64_t CandidatesFiltered = 0;
    uint32_t NumFreshVars = 0;  ///< Variables the subtree allocated.
    /// Sorted hashes of the variable-free goal predicates evaluated in
    /// the subtree (plus NormalizesTo subject hashes). A consumer whose
    /// goal stack intersects this set must treat the lookup as a miss:
    /// splicing would hide a cycle the uncached run reports as overflow.
    std::vector<uint64_t> StackHashes;
    std::vector<GoalRec> Goals; ///< Goals[0] is the root.
    std::vector<CandRec> Cands;
    std::vector<BindRec> Binds;
    /// Winner info for Trait roots (consumed by NormalizesTo callers).
    bool HasWinner = false;
    CandidateKind WinnerKind = CandidateKind::Builtin;
    ImplId WinnerImpl;
    std::vector<std::pair<Symbol, CacheEnc>> WinnerSubst;
  };
  using EntryPtr = std::shared_ptr<const Entry>;

  struct Key {
    uint64_t Fp0 = 0; ///< Program/flags fingerprint, low half.
    uint64_t Fp1 = 0; ///< Fingerprint, high half.
    CacheEnc Pred;    ///< Resolved root predicate, raw variable indices.
    std::shared_ptr<const CacheEnc> Env; ///< Resolved environment.
    uint64_t Hash = 0;

    friend bool operator==(const Key &A, const Key &B) {
      if (A.Fp0 != B.Fp0 || A.Fp1 != B.Fp1 || A.Pred != B.Pred)
        return false;
      if (A.Env == B.Env)
        return true;
      if (!A.Env || !B.Env)
        return !A.Env && !B.Env;
      return *A.Env == *B.Env;
    }
  };

  /// Fills K.Hash from the other fields. Equivalent to
  /// finishKeyHash(envSeed(...), K.Pred); the split form lets a solver
  /// hoist the fingerprint+environment prefix — constant across every
  /// goal of a run whose environment is variable-free — out of the
  /// per-goal key computation.
  static void finalizeKey(Key &K);

  /// Hash prefix over the fingerprint and environment tokens.
  static uint64_t envSeed(uint64_t Fp0, uint64_t Fp1, const CacheEnc *Env);

  /// Folds the predicate tokens onto an envSeed() prefix.
  static uint64_t finishKeyHash(uint64_t Seed, const CacheEnc &Pred);

  /// 128-bit fingerprint over the program source and the solver flags
  /// that change proof-tree shape. Depth/evaluation limits are excluded
  /// on purpose: they are handled by per-lookup admission checks.
  static std::pair<uint64_t, uint64_t>
  fingerprint(std::string_view Source, bool EmitWellFormedGoals,
              bool EnableCandidateIndex, bool EnableMemoization);

  GoalCache();
  explicit GoalCache(Config C);

  /// Returns the entry for K, or null. Bumps the entry's LRU clock.
  EntryPtr lookup(const Key &K);

  /// Keep-first insert: returns false (and keeps the resident entry) if
  /// K is already present. Evicts the least-recently-used entry of the
  /// target shard when that shard is at capacity.
  bool insert(const Key &K, EntryPtr E);

  size_t size() const;
  uint64_t evictions() const;

private:
  struct Stored {
    Key K;
    EntryPtr E;
    uint64_t LastUsed = 0;
  };
  struct Shard {
    mutable std::mutex M;
    std::unordered_multimap<uint64_t, Stored> Map;
    uint64_t Clock = 0;
    uint64_t Evictions = 0;
  };

  Shard &shardFor(uint64_t Hash) {
    return ShardTable[Hash % NumShards];
  }

  std::unique_ptr<Shard[]> ShardTable;
  unsigned NumShards;
  size_t PerShardCap;
};

} // namespace argus

#endif // ARGUS_SOLVER_GOALCACHE_H
