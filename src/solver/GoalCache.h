//===- solver/GoalCache.h - Cross-job goal-result cache -------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sharded, lock-striped cache from canonicalized goal keys to recorded
/// proof subtrees. The solver consults it after its overflow/cycle checks:
/// on a hit the stored subtree is spliced node-for-node into the consumer's
/// proof forest and the recorded inference-variable bindings are replayed,
/// so cached and uncached runs produce byte-identical trees, views, and
/// JSON at any thread count.
///
/// Keys and entries never reference a session's TypeArena or
/// StringInterner directly. Types and predicates are stored as canonical
/// u64 token streams (structural, arena-independent); symbols are bridged
/// through a cache-owned CacheSymbolRegistry so entries recorded by one
/// session's interner decode correctly under any other. A key is the
/// resolved goal, its resolved environment, its origin span, and the
/// solver flags that shape proof trees — *not* a program fingerprint.
/// Validity against the current program is checked per entry through
/// dependency units (Entry::Deps): the impl slices and trait declarations
/// the recorded subtree actually consulted, fingerprinted at record time
/// and re-fingerprinted against the consumer's program on lookup. Editing
/// one impl therefore invalidates exactly the goals whose enumeration
/// could see it; everything else replays from cache, across edits of one
/// program and across distinct programs sharing declarations.
///
/// Inference variables are tagged extern (an index into the consumer's
/// own variable space, resolved identically by key equality) or intern
/// (allocated inside the recorded subtree, re-based onto fresh variables
/// at splice time).
///
/// Cacheability is enforced at both ends: goals are only recorded when
/// their resolved predicate has no unresolved inference variables, and a
/// completed recording is rejected (never inserted) when its result is
/// ambiguous, any node overflowed, a budget stop or deadline fired
/// mid-subtree, or the subtree bound a variable it did not allocate.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_SOLVER_GOALCACHE_H
#define ARGUS_SOLVER_GOALCACHE_H

#include "solver/ProofTree.h"
#include "support/StringInterner.h"
#include "tlang/Predicate.h"
#include "tlang/TypeArena.h"

#include <deque>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace argus {

/// Canonical token stream for a type, predicate, or environment.
using CacheEnc = std::vector<uint64_t>;

/// FNV-1a over u64 tokens; \p Salt separates hash domains (full
/// predicates vs NormalizesTo subjects vs environments).
uint64_t hashCacheEnc(const CacheEnc &Enc, uint64_t Salt);

/// Thread-safe text <-> small-integer registry owned by a GoalCache.
/// Every symbol a cache entry stores is one of these ids, so entries are
/// portable between sessions whose StringInterners assigned different
/// raw values (or never interned the name at all).
class CacheSymbolRegistry {
public:
  CacheSymbolRegistry() : Uid(nextUid()) {}

  /// Interns \p Text, returning the existing id if already present.
  uint32_t intern(std::string_view Text);

  /// Returns the text for \p Id. The view is stable for the lifetime of
  /// the registry.
  std::string_view text(uint32_t Id) const;

  size_t size() const;

  /// Process-unique identity of this registry. Session-scoped scratch
  /// caches that memoize registry tokens tag their contents with this
  /// instead of the registry's address, which a destroyed-and-
  /// reallocated registry could reuse (the classic ABA hazard).
  uint64_t uid() const { return Uid; }

private:
  static uint64_t nextUid();

  const uint64_t Uid;
  mutable std::mutex M;
  // A deque keeps element addresses stable on growth, so the string_view
  // keys in Map (and the views text() hands out) never dangle.
  std::deque<std::string> Strings;
  std::unordered_map<std::string_view, uint32_t> Map;
};

/// Memoized bridge between one session's StringInterner and a cache's
/// CacheSymbolRegistry. Owned per solver (not thread-safe); the memo
/// vectors keep the registry's mutex off the per-token path.
class CacheSymbolMap {
public:
  CacheSymbolMap(CacheSymbolRegistry &Reg, StringInterner &Names)
      : Reg(&Reg), Names(&Names) {}

  /// Session symbol -> registry token. 0 encodes the invalid symbol.
  uint64_t token(Symbol S);

  /// Registry token -> session symbol, interning the text into the
  /// session on first sight (splice-side decoding).
  Symbol symbol(uint64_t Token);

  /// Registry token -> session symbol without interning: returns the
  /// invalid symbol when the session never saw the name. Used by
  /// dependency checks, which must not mutate the consumer's interner.
  Symbol peek(uint64_t Token);

private:
  CacheSymbolRegistry *Reg;
  StringInterner *Names;
  std::vector<uint32_t> ToCache;   ///< Symbol value -> registry id + 1.
  std::vector<uint32_t> FromCache; ///< Registry id -> Symbol value + 1.
};

/// Memo of raw-mode type encodings, indexed by TypeId. Arena types are
/// immutable and ids append-only, so a type's RawVars encoding never
/// changes for the lifetime of its arena; solvers keep one of these so
/// the per-goal key and stack-hash encodes of deep types degrade to a
/// token-span copy instead of a recursive arena walk.
struct TypeEncodeMemo {
  struct Rec {
    std::vector<uint64_t> Tokens;
    bool HasVar = false;
    bool Valid = false;
  };
  std::vector<Rec> ByType;

  Rec &slot(uint32_t Index) {
    if (Index >= ByType.size())
      ByType.resize(Index + 1);
    return ByType[Index];
  }

  /// Drops every memoized encoding (a borrower whose registry or arena
  /// identity changed must start over; see SolveScratch's tags).
  void clear() { ByType.clear(); }
};

/// Encodes types/predicates into canonical token streams. Inference
/// variables with index >= VarsBase are tagged intern and stored relative
/// to the base; smaller indices are tagged extern and stored raw. Pass
/// RawVars to store every variable extern (used for keys and stack
/// hashes, where indices are meaningful in the consumer's own space).
///
/// When \p Syms is set, symbols are emitted as registry tokens (portable
/// across sessions); without it they are raw interner values, which only
/// round-trip within one session.
class CacheEncoder {
public:
  static constexpr uint32_t RawVars = 0xFFFFFFFFu;

  /// \p Memo may only be shared between RawVars encoders over the same
  /// arena with the same symbol map: frame-relative encodings re-base
  /// variable tokens, so their token spans are not reusable across
  /// VarsBase values.
  CacheEncoder(const TypeArena &Arena, uint32_t VarsBase,
               TypeEncodeMemo *Memo = nullptr, CacheSymbolMap *Syms = nullptr)
      : Arena(&Arena), VarsBase(VarsBase),
        Memo(VarsBase == RawVars ? Memo : nullptr), Syms(Syms) {}

  void type(CacheEnc &Out, TypeId T);
  void pred(CacheEnc &Out, const Predicate &P);

  /// True if any inference variable token has been emitted since
  /// construction or the last resetSawVar().
  bool sawVar() const { return SawVar; }
  void resetSawVar() { SawVar = false; }

private:
  void typeUncached(CacheEnc &Out, TypeId T);
  uint64_t symToken(Symbol S);

  const TypeArena *Arena;
  uint32_t VarsBase;
  TypeEncodeMemo *Memo = nullptr;
  CacheSymbolMap *Syms = nullptr;
  bool SawVar = false;
};

/// Decodes canonical token streams back into a (possibly different)
/// arena. Intern-tagged variables are re-based onto \p VarsBase, the
/// index of the first variable the consumer allocated for the splice.
class CacheDecoder {
public:
  CacheDecoder(TypeArena &Arena, uint32_t VarsBase,
               CacheSymbolMap *Syms = nullptr)
      : Arena(&Arena), VarsBase(VarsBase), Syms(Syms) {}

  TypeId type(const CacheEnc &In, size_t &Pos);
  Predicate pred(const CacheEnc &In, size_t &Pos);

  /// Decodes a variable token produced by CacheEncoder into an index in
  /// the consumer's variable space.
  uint32_t varIndex(uint64_t Token) const;

private:
  Symbol symFromToken(uint64_t Token);

  TypeArena *Arena;
  uint32_t VarsBase;
  CacheSymbolMap *Syms = nullptr;
};

class GoalCache {
public:
  struct Config {
    unsigned Shards = 16;
    size_t Capacity = 65536; ///< Total entries across all shards.
  };

  static constexpr uint32_t NoId = 0xFFFFFFFFu;

  /// One program-consultation dependency of a recorded subtree. An
  /// ImplSlice unit names the exact candidate sequence an enumeration
  /// walked (one head-constructor bucket merged with the trait's blanket
  /// impls under the candidate index, or the trait's full impl list
  /// without it); a TraitDecl unit names a trait declaration the subtree
  /// read (fn-trait flag, where-clauses, associated-type bounds). Fp is
  /// the slice/declaration fingerprint at record time; a lookup admits
  /// the entry only if every unit re-fingerprints identically against
  /// the consumer's program. An empty slice still records a unit with
  /// the empty-slice fingerprint — the *negative* dependency that makes
  /// adding a matching impl invalidate previously-failed goals.
  struct DepUnit {
    enum class Kind : uint8_t { ImplSlice, TraitDecl };
    Kind K = Kind::ImplSlice;
    uint64_t Trait = 0; ///< Registry token of the trait name.
    bool HasHead = false; ///< ImplSlice only: bucketed by head key.
    uint64_t HeadKind = 0;
    uint64_t HeadName = 0;      ///< Registry token.
    uint64_t HeadTraitName = 0; ///< Registry token.
    uint64_t HeadArity = 0;
    uint64_t HeadMutable = 0;
    uint64_t Fp = 0;

    /// Identity comparison (which slice/decl), ignoring Fp.
    bool sameUnit(const DepUnit &B) const {
      return K == B.K && Trait == B.Trait && HasHead == B.HasHead &&
             HeadKind == B.HeadKind && HeadName == B.HeadName &&
             HeadTraitName == B.HeadTraitName && HeadArity == B.HeadArity &&
             HeadMutable == B.HeadMutable;
    }
    friend bool operator==(const DepUnit &A, const DepUnit &B) {
      return A.sameUnit(B) && A.Fp == B.Fp;
    }
  };

  /// One recorded goal node, ids relative to the subtree: goal 0 is the
  /// root, candidate ids count from the first candidate the subtree
  /// created.
  struct GoalRec {
    CacheEnc Pred;
    EvalResult Result = EvalResult::Maybe;
    uint32_t RelDepth = 0;
    Span Origin;
    uint32_t ParentCandidate = NoId; ///< Unused for the root (caller-owned).
    uint32_t SelectedCandidate = NoId;
    std::vector<uint32_t> Candidates;
    CacheEnc NormalizedValue; ///< Empty = none.
    bool FromCache = false;
  };

  /// Impl references are positional — (dependency unit, index into that
  /// unit's candidate sequence) — never raw ImplIds, which are not stable
  /// across programs. The consumer resolves them through its own slice
  /// after the dependency check proved the sequences byte-identical.
  struct CandRec {
    CandidateKind Kind = CandidateKind::Builtin;
    uint32_t ImplUnit = NoId; ///< Index into Entry::Deps (Impl kind only).
    uint32_t ImplPos = 0;     ///< Position in that unit's sequence.
    uint64_t BuiltinName = 0; ///< Registry token.
    bool HasAssumption = false;
    CacheEnc Assumption;
    EvalResult Result = EvalResult::Maybe;
    uint32_t Parent = 0;
    std::vector<uint32_t> SubGoals;
  };

  /// One committed binding, in trail order. Var is a CacheEncoder
  /// variable token; Value is an encoded type.
  struct BindRec {
    uint64_t Var = 0;
    CacheEnc Value;
  };

  struct Entry {
    uint32_t MaxRelDepth = 0;   ///< Deepest node depth minus root depth.
    uint64_t TotalEvals = 0;    ///< Goal evaluations in the subtree (root incl).
    uint32_t NumFreshVars = 0;  ///< Variables the subtree allocated.
    /// Parallel to Deps: how many times the recorded subtree enumerated
    /// each ImplSlice unit (0 for TraitDecl units). The splice recomputes
    /// candidates_filtered from these against the *consumer's* program
    /// (enumerations x impls-outside-the-slice), so warm and cold stats
    /// agree exactly instead of replaying a recorder-side total.
    std::vector<uint32_t> SliceEnumCounts;
    /// Everything the subtree consulted in the program, in first-
    /// consultation order. Checked on every lookup; see DepUnit.
    std::vector<DepUnit> Deps;
    /// Sorted hashes of the variable-free goal predicates evaluated in
    /// the subtree (plus NormalizesTo subject hashes). A consumer whose
    /// goal stack intersects this set must treat the lookup as a miss:
    /// splicing would hide a cycle the uncached run reports as overflow.
    std::vector<uint64_t> StackHashes;
    std::vector<GoalRec> Goals; ///< Goals[0] is the root.
    std::vector<CandRec> Cands;
    std::vector<BindRec> Binds;
    /// Winner info for Trait roots (consumed by NormalizesTo callers).
    bool HasWinner = false;
    CandidateKind WinnerKind = CandidateKind::Builtin;
    uint32_t WinnerImplUnit = NoId; ///< Positional, like CandRec.
    uint32_t WinnerImplPos = 0;
    std::vector<std::pair<uint64_t, CacheEnc>> WinnerSubst;
    /// True for entries materialized from a persisted image rather than
    /// recorded by a live solve. The hit path runs an extra positional
    /// sanity check on these before splicing (the image is external
    /// input), and the engine counts their hits separately
    /// (cache_disk_hits). Not part of entry identity.
    bool FromDisk = false;
  };
  using EntryPtr = std::shared_ptr<const Entry>;

  /// The key carries no program identity at all: validity against a
  /// particular program is the dependency check's job. Origin (the root
  /// goal's span) is part of the key because recorded subtrees splice
  /// their interior origins verbatim — root-propagated origins then match
  /// the consumer's by construction, and declaration-site origins are
  /// pinned by the span-inclusive dependency fingerprints.
  struct Key {
    uint64_t FlagsFp = 0; ///< Tree-shaping solver flags.
    Span Origin;          ///< Root goal's origin span.
    CacheEnc Pred;        ///< Resolved root predicate, raw variable indices.
    std::shared_ptr<const CacheEnc> Env; ///< Resolved environment.
    uint64_t Hash = 0;

    friend bool operator==(const Key &A, const Key &B) {
      if (A.FlagsFp != B.FlagsFp || !(A.Origin == B.Origin) ||
          A.Pred != B.Pred)
        return false;
      if (A.Env == B.Env)
        return true;
      if (!A.Env || !B.Env)
        return !A.Env && !B.Env;
      return *A.Env == *B.Env;
    }
  };

  /// Fills K.Hash from the other fields. Equivalent to
  /// finishKeyHash(envSeed(...), K.Origin, K.Pred); the split form lets a
  /// solver hoist the flags+environment prefix — constant across every
  /// goal of a run whose environment is variable-free — out of the
  /// per-goal key computation.
  static void finalizeKey(Key &K);

  /// Hash prefix over the flags fingerprint and environment tokens.
  static uint64_t envSeed(uint64_t FlagsFp, const CacheEnc *Env);

  /// Folds the origin span and predicate tokens onto an envSeed() prefix.
  static uint64_t finishKeyHash(uint64_t Seed, Span Origin,
                                const CacheEnc &Pred);

  GoalCache();
  explicit GoalCache(Config C);

  /// The registry every entry's symbols are interned into.
  CacheSymbolRegistry &symbols() { return Symbols; }
  const CacheSymbolRegistry &symbols() const { return Symbols; }

  /// Appends every entry stored under K to \p Out, in insertion order,
  /// bumping their LRU clocks. A key can hold several variants — one per
  /// distinct dependency set — because the key itself no longer isolates
  /// programs; the caller dependency-checks each variant and at most one
  /// can pass against any given program.
  void lookup(const Key &K, std::vector<EntryPtr> &Out);

  /// Keep-first insert per (key, dependency set): returns false (and
  /// keeps the resident entry) if an entry with equal key and equal Deps
  /// is already present. Evicts the least-recently-used entry of the
  /// target shard when that shard is at capacity.
  bool insert(const Key &K, EntryPtr E);

  size_t size() const;
  uint64_t evictions() const;

  /// A deterministic snapshot of every resident (key, entry) pair,
  /// sorted by key hash with a full-field tiebreak (two entries may
  /// share a key when their dependency sets differ). LRU clocks are not
  /// disturbed. The persistence layer serializes from this; it is also
  /// the stable iteration order for tests.
  std::vector<std::pair<Key, EntryPtr>> snapshot() const;

private:
  struct Stored {
    Key K;
    EntryPtr E;
    uint64_t LastUsed = 0;
  };
  struct Shard {
    mutable std::mutex M;
    std::unordered_multimap<uint64_t, Stored> Map;
    uint64_t Clock = 0;
    uint64_t Evictions = 0;
  };

  Shard &shardFor(uint64_t Hash) {
    return ShardTable[Hash % NumShards];
  }

  CacheSymbolRegistry Symbols;
  std::unique_ptr<Shard[]> ShardTable;
  unsigned NumShards;
  size_t PerShardCap;
};

} // namespace argus

#endif // ARGUS_SOLVER_GOALCACHE_H
