//===- solver/Coherence.cpp -----------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/Coherence.h"

#include "solver/InferContext.h"
#include "tlang/Printer.h"

using namespace argus;

bool argus::implsOverlap(const Program &Prog, const ImplDecl &A,
                         const ImplDecl &B) {
  if (A.Trait != B.Trait || A.TraitArgs.size() != B.TraitArgs.size())
    return false;

  Session &S = Prog.session();
  InferContext Infcx(S.types(), 0);

  auto Instantiate = [&](const ImplDecl &Decl, TypeId &SelfOut,
                         std::vector<TypeId> &ArgsOut) {
    ParamSubst Subst;
    for (Symbol Generic : Decl.Generics)
      Subst.emplace(Generic, Infcx.freshVar());
    SelfOut = S.types().substitute(Decl.SelfTy, Subst);
    for (TypeId Arg : Decl.TraitArgs)
      ArgsOut.push_back(S.types().substitute(Arg, Subst));
  };

  TypeId SelfA, SelfB;
  std::vector<TypeId> ArgsA, ArgsB;
  Instantiate(A, SelfA, ArgsA);
  Instantiate(B, SelfB, ArgsB);

  if (!Infcx.unify(SelfA, SelfB))
    return false;
  for (size_t I = 0; I != ArgsA.size(); ++I)
    if (!Infcx.unify(ArgsA[I], ArgsB[I]))
      return false;
  return true;
}

bool argus::violatesOrphanRule(const Program &Prog, const ImplDecl &Decl) {
  if (Prog.localityOf(Decl.Trait) == Locality::Local)
    return false;
  // Local impls of external traits are fine when the self type's head is
  // local; external-library impls are by definition coherent in their own
  // crate.
  if (Decl.Loc == Locality::External)
    return false;
  return Prog.typeLocality(Decl.SelfTy) == Locality::External;
}

std::vector<CoherenceError> argus::checkCoherence(const Program &Prog) {
  std::vector<CoherenceError> Errors;
  TypePrinter Printer(Prog);

  const std::vector<ImplDecl> &Impls = Prog.impls();
  for (size_t I = 0; I != Impls.size(); ++I) {
    const ImplDecl &A = Impls[I];
    if (violatesOrphanRule(Prog, A)) {
      Errors.push_back(CoherenceError{
          CoherenceError::Kind::Orphan, A.Id, ImplId::invalid(),
          "impl violates the orphan rule: " + Printer.printImplHeader(A)});
    }
    for (size_t J = I + 1; J != Impls.size(); ++J) {
      const ImplDecl &B = Impls[J];
      if (A.Trait != B.Trait)
        continue;
      if (implsOverlap(Prog, A, B)) {
        Errors.push_back(CoherenceError{
            CoherenceError::Kind::Overlap, A.Id, B.Id,
            "conflicting implementations: " + Printer.printImplHeader(A) +
                " overlaps " + Printer.printImplHeader(B)});
      }
    }
  }
  return Errors;
}
