//===- solver/CachePersist.h - GoalCache save/load ------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Versioned, checksummed serialization of a solver::GoalCache, so a
/// warm cache survives process restarts: batch runs and edit sessions
/// re-solve library-scale obligations across invocations, and the cache
/// is safe to persist by construction — every disk entry is revalidated
/// against the *current* program's dependency fingerprints on lookup, so
/// a stale image can only dep-miss, never lie.
///
/// Image layout (all values little-endian u64 words; strings are
/// byte-length-prefixed and zero-padded to the word boundary):
///
///   header     ::= magic version flags symCount symWords
///                  entryCount entryWords symCksum entryCksum hdrCksum
///   symbols    ::= (byteLen paddedBytes)*        ; symCount strings
///   entries    ::= entry*                        ; entryCount records
///   trailer    ::= imageCksum                    ; over all prior bytes
///
/// Symbols are the owning cache's CacheSymbolRegistry texts; on load
/// they are re-interned into the target cache's registry and every
/// symbol token in every entry is rewritten through the resulting id
/// map, so images are portable across processes and interners. Key
/// hashes are never trusted from disk — they are recomputed with
/// GoalCache::finalizeKey after the rewrite.
///
/// The loader treats the image as adversarial input: every length,
/// offset, count, symbol index, enum value, and cross-record index is
/// bounds-checked against the decoded structure before anything touches
/// the cache, and entries are staged so a failure anywhere discards the
/// whole load (all-or-nothing; the run proceeds cold). Checksums
/// (FNV-1a, whole-image and per-section) catch accidental corruption;
/// the structural checks guarantee that even a deliberately forged image
/// cannot crash the solver or make it lie — a forged entry that survives
/// them is still subject to the per-lookup dependency revalidation and
/// the splice-time positional check on FromDisk entries.
///
/// Saves write to "<path>.tmp" and rename into place, so a crash
/// mid-save never leaves a torn image at the target path.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_SOLVER_CACHEPERSIST_H
#define ARGUS_SOLVER_CACHEPERSIST_H

#include "solver/GoalCache.h"

#include <string>
#include <string_view>

namespace argus {

class FaultInjector;

/// Current image format version. Bumped on any layout change; loaders
/// reject versions they do not understand (BadVersion) rather than
/// guessing — warm starts are an optimization, never worth a wrong
/// answer.
inline constexpr uint64_t CacheImageVersion = 1;

/// Why a load was rejected. Ok means every entry was staged, validated,
/// and inserted.
enum class CacheLoadStatus : uint8_t {
  Ok = 0,
  IoError,     ///< File unreadable (or injected cache.io fault).
  BadMagic,    ///< Not a cache image at all.
  BadVersion,  ///< Version skew; format not understood.
  Truncated,   ///< Image shorter than its own structure claims.
  BadChecksum, ///< Header/section/image checksum mismatch (bit flips).
  Malformed,   ///< Structurally invalid contents (bad count, index,
               ///< enum value, token stream, or record shape).
};

/// Stable snake_case status name ("io_error", ...), used in failure
/// details and test matchers.
const char *cacheLoadStatusName(CacheLoadStatus S);

struct CacheLoadResult {
  CacheLoadStatus Status = CacheLoadStatus::Ok;
  /// Entries actually inserted (Ok only; keep-first dedup and capacity
  /// eviction can make this differ from EntriesInImage).
  uint64_t EntriesLoaded = 0;
  /// Entries the image header claimed.
  uint64_t EntriesInImage = 0;
  /// Human-readable rejection detail for failure notes; empty on Ok.
  std::string Detail;

  bool ok() const { return Status == CacheLoadStatus::Ok; }
};

struct CacheSaveResult {
  bool Ok = false;
  uint64_t EntriesSaved = 0;
  uint64_t ImageBytes = 0;
  /// Human-readable error for warnings; empty on success.
  std::string Detail;
};

/// Serializes every resident entry of \p Cache into an image string.
/// Deterministic for given cache contents (snapshot order).
std::string serializeGoalCache(const GoalCache &Cache);

/// Validates \p Image and inserts its entries into \p Cache, rewriting
/// symbol tokens into the target registry and marking every entry
/// FromDisk. All-or-nothing: on any non-Ok status the cache's entry set
/// is untouched.
CacheLoadResult deserializeGoalCache(GoalCache &Cache,
                                     std::string_view Image);

/// serializeGoalCache + atomic write-to-temp + rename. \p Faults (may be
/// null) is probed at site "cache.io" with scope \p FaultScope to force
/// the I/O failure path deterministically.
CacheSaveResult saveGoalCache(const GoalCache &Cache,
                              const std::string &Path,
                              FaultInjector *Faults = nullptr,
                              std::string_view FaultScope = {});

/// Reads \p Path and deserializes into \p Cache. \p Faults (may be
/// null) is probed at "cache.io" (read fails with IoError) and
/// "cache.load_corrupt" (one byte of the read image is flipped, so the
/// checksum rejection path runs end-to-end).
CacheLoadResult loadGoalCache(GoalCache &Cache, const std::string &Path,
                              FaultInjector *Faults = nullptr,
                              std::string_view FaultScope = {});

} // namespace argus

#endif // ARGUS_SOLVER_CACHEPERSIST_H
