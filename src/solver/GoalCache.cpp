//===- solver/GoalCache.cpp -----------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/GoalCache.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <tuple>

using namespace argus;

//===----------------------------------------------------------------------===//
// Canonical encoding
//===----------------------------------------------------------------------===//
//
// Token grammar (every token is a u64):
//
//   type     ::= 0 | 1 node
//   node     ::= kind varTok              (Infer)
//              | kind sym sym mut region nargs type*   (all other kinds)
//   varTok   ::= (rel << 1) | 1           (intern: allocated in the subtree)
//              | (raw << 1) | 0           (extern: consumer's own variable)
//   sym      ::= 0 | id + 1
//   region   ::= kind sym
//   pred     ::= kind sym type nargs type* type region region
//
// With a CacheSymbolMap installed, `id` is a CacheSymbolRegistry id —
// stable text-keyed identity shared by every session using the cache.
// Without one (tests, single-session round-trips) it degrades to the raw
// interner value.

namespace {

constexpr uint64_t HashSeed = 1469598103934665603ull;

/// Folds one 64-bit token into the running hash: a multiply to spread
/// the token's bits (off the critical path) and one avalanche round on
/// the combination. Replaces a byte-wise FNV loop whose 8-multiply
/// dependency chain per token was the hottest instruction stream in
/// cached solves — key and stack hashes run once per goal evaluation.
uint64_t mixToken(uint64_t H, uint64_t Value) {
  H ^= Value * 0x9E3779B97F4A7C15ull;
  H ^= H >> 30;
  H *= 0xBF58476D1CE4E5B9ull;
  return H;
}

} // namespace

//===----------------------------------------------------------------------===//
// Symbol registry and per-session bridge
//===----------------------------------------------------------------------===//

uint64_t CacheSymbolRegistry::nextUid() {
  static std::atomic<uint64_t> Counter{1};
  return Counter.fetch_add(1, std::memory_order_relaxed);
}

uint32_t CacheSymbolRegistry::intern(std::string_view Text) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Map.find(Text);
  if (It != Map.end())
    return It->second;
  Strings.emplace_back(Text);
  uint32_t Id = static_cast<uint32_t>(Strings.size() - 1);
  Map.emplace(std::string_view(Strings.back()), Id);
  return Id;
}

std::string_view CacheSymbolRegistry::text(uint32_t Id) const {
  std::lock_guard<std::mutex> Lock(M);
  assert(Id < Strings.size() && "bad registry id");
  return Strings[Id];
}

size_t CacheSymbolRegistry::size() const {
  std::lock_guard<std::mutex> Lock(M);
  return Strings.size();
}

uint64_t CacheSymbolMap::token(Symbol S) {
  if (!S.isValid())
    return 0;
  uint32_t Index = S.value();
  if (Index >= ToCache.size())
    ToCache.resize(Index + 1, 0);
  if (ToCache[Index] == 0)
    ToCache[Index] = Reg->intern(Names->text(S)) + 1;
  return ToCache[Index];
}

Symbol CacheSymbolMap::symbol(uint64_t Token) {
  if (Token == 0)
    return Symbol();
  uint32_t Id = static_cast<uint32_t>(Token - 1);
  if (Id >= FromCache.size())
    FromCache.resize(Id + 1, 0);
  if (FromCache[Id] == 0)
    FromCache[Id] = Names->intern(Reg->text(Id)).value() + 1;
  return Symbol(FromCache[Id] - 1);
}

Symbol CacheSymbolMap::peek(uint64_t Token) {
  if (Token == 0)
    return Symbol();
  uint32_t Id = static_cast<uint32_t>(Token - 1);
  if (Id < FromCache.size() && FromCache[Id] != 0)
    return Symbol(FromCache[Id] - 1);
  Symbol S = Names->lookup(Reg->text(Id));
  if (S.isValid()) {
    if (Id >= FromCache.size())
      FromCache.resize(Id + 1, 0);
    FromCache[Id] = S.value() + 1;
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Encoder / decoder
//===----------------------------------------------------------------------===//

uint64_t argus::hashCacheEnc(const CacheEnc &Enc, uint64_t Salt) {
  uint64_t H = mixToken(HashSeed, Salt);
  for (uint64_t Token : Enc)
    H = mixToken(H, Token);
  return H;
}

uint64_t CacheEncoder::symToken(Symbol S) {
  if (Syms)
    return Syms->token(S);
  return S.isValid() ? static_cast<uint64_t>(S.value()) + 1 : 0;
}

Symbol CacheDecoder::symFromToken(uint64_t Token) {
  if (Syms)
    return Syms->symbol(Token);
  return Token == 0 ? Symbol()
                    : Symbol(static_cast<uint32_t>(Token - 1));
}

void CacheEncoder::type(CacheEnc &Out, TypeId T) {
  if (!Memo || !T.isValid()) {
    typeUncached(Out, T);
    return;
  }
  uint32_t Index = T.value();
  if (Index < Memo->ByType.size() && Memo->ByType[Index].Valid) {
    const TypeEncodeMemo::Rec &R = Memo->ByType[Index];
    Out.insert(Out.end(), R.Tokens.begin(), R.Tokens.end());
    SawVar |= R.HasVar;
    return;
  }
  // Record this type's span as it is emitted. The recursive calls below
  // go through type() too, so sub-types get their own memo slots.
  size_t Start = Out.size();
  bool SawBefore = SawVar;
  SawVar = false;
  typeUncached(Out, T);
  TypeEncodeMemo::Rec &Slot = Memo->slot(Index);
  Slot.Tokens.assign(Out.begin() + static_cast<ptrdiff_t>(Start), Out.end());
  Slot.HasVar = SawVar;
  Slot.Valid = true;
  SawVar |= SawBefore;
}

void CacheEncoder::typeUncached(CacheEnc &Out, TypeId T) {
  if (!T.isValid()) {
    Out.push_back(0);
    return;
  }
  Out.push_back(1);
  const Type &Node = Arena->get(T);
  Out.push_back(static_cast<uint64_t>(Node.Kind));
  if (Node.Kind == TypeKind::Infer) {
    SawVar = true;
    uint32_t Index = Node.InferIndex;
    if (VarsBase != RawVars && Index >= VarsBase)
      Out.push_back((static_cast<uint64_t>(Index - VarsBase) << 1) | 1);
    else
      Out.push_back(static_cast<uint64_t>(Index) << 1);
    return;
  }
  Out.push_back(symToken(Node.Name));
  Out.push_back(symToken(Node.TraitName));
  Out.push_back(Node.Mutable ? 1 : 0);
  Out.push_back(static_cast<uint64_t>(Node.Rgn.Kind));
  Out.push_back(symToken(Node.Rgn.Name));
  Out.push_back(Node.Args.size());
  for (TypeId Arg : Node.Args)
    type(Out, Arg);
}

void CacheEncoder::pred(CacheEnc &Out, const Predicate &P) {
  Out.push_back(static_cast<uint64_t>(P.Kind));
  Out.push_back(symToken(P.Trait));
  type(Out, P.Subject);
  Out.push_back(P.Args.size());
  for (TypeId Arg : P.Args)
    type(Out, Arg);
  type(Out, P.Rhs);
  Out.push_back(static_cast<uint64_t>(P.Rgn.Kind));
  Out.push_back(symToken(P.Rgn.Name));
  Out.push_back(static_cast<uint64_t>(P.SubRegion.Kind));
  Out.push_back(symToken(P.SubRegion.Name));
}

uint32_t CacheDecoder::varIndex(uint64_t Token) const {
  uint32_t Index = static_cast<uint32_t>(Token >> 1);
  return (Token & 1) ? VarsBase + Index : Index;
}

TypeId CacheDecoder::type(const CacheEnc &In, size_t &Pos) {
  if (In[Pos++] == 0)
    return TypeId::invalid();
  Type Node;
  Node.Kind = static_cast<TypeKind>(In[Pos++]);
  if (Node.Kind == TypeKind::Infer)
    return Arena->infer(varIndex(In[Pos++]));
  Node.Name = symFromToken(In[Pos++]);
  Node.TraitName = symFromToken(In[Pos++]);
  Node.Mutable = In[Pos++] != 0;
  Node.Rgn.Kind = static_cast<RegionKind>(In[Pos++]);
  Node.Rgn.Name = symFromToken(In[Pos++]);
  size_t NumArgs = In[Pos++];
  Node.Args.reserve(NumArgs);
  for (size_t I = 0; I != NumArgs; ++I)
    Node.Args.push_back(type(In, Pos));
  return Arena->intern(std::move(Node));
}

Predicate CacheDecoder::pred(const CacheEnc &In, size_t &Pos) {
  Predicate P;
  P.Kind = static_cast<PredicateKind>(In[Pos++]);
  P.Trait = symFromToken(In[Pos++]);
  P.Subject = type(In, Pos);
  size_t NumArgs = In[Pos++];
  P.Args.reserve(NumArgs);
  for (size_t I = 0; I != NumArgs; ++I)
    P.Args.push_back(type(In, Pos));
  P.Rhs = type(In, Pos);
  P.Rgn.Kind = static_cast<RegionKind>(In[Pos++]);
  P.Rgn.Name = symFromToken(In[Pos++]);
  P.SubRegion.Kind = static_cast<RegionKind>(In[Pos++]);
  P.SubRegion.Name = symFromToken(In[Pos++]);
  return P;
}

//===----------------------------------------------------------------------===//
// Key hashing
//===----------------------------------------------------------------------===//

uint64_t GoalCache::envSeed(uint64_t FlagsFp, const CacheEnc *Env) {
  uint64_t H = mixToken(HashSeed, FlagsFp);
  if (Env)
    for (uint64_t Token : *Env)
      H = mixToken(H, Token);
  return mixToken(H, 0x454E56ull); // "ENV" separator.
}

uint64_t GoalCache::finishKeyHash(uint64_t Seed, Span Origin,
                                  const CacheEnc &Pred) {
  uint64_t H = Seed;
  H = mixToken(H, Origin.File.isValid()
                      ? static_cast<uint64_t>(Origin.File.value()) + 1
                      : 0);
  H = mixToken(H, (static_cast<uint64_t>(Origin.Begin) << 32) | Origin.End);
  for (uint64_t Token : Pred)
    H = mixToken(H, Token);
  return H;
}

void GoalCache::finalizeKey(Key &K) {
  K.Hash = finishKeyHash(envSeed(K.FlagsFp, K.Env.get()), K.Origin, K.Pred);
}

//===----------------------------------------------------------------------===//
// Sharded map
//===----------------------------------------------------------------------===//

GoalCache::GoalCache() : GoalCache(Config()) {}

GoalCache::GoalCache(Config C)
    : NumShards(C.Shards == 0 ? 1 : C.Shards) {
  size_t Capacity = C.Capacity == 0 ? 1 : C.Capacity;
  PerShardCap = Capacity / NumShards;
  if (PerShardCap == 0)
    PerShardCap = 1;
  ShardTable = std::make_unique<Shard[]>(NumShards);
}

void GoalCache::lookup(const Key &K, std::vector<EntryPtr> &Out) {
  Shard &S = shardFor(K.Hash);
  std::lock_guard<std::mutex> Lock(S.M);
  auto Range = S.Map.equal_range(K.Hash);
  for (auto It = Range.first; It != Range.second; ++It) {
    if (It->second.K == K) {
      It->second.LastUsed = ++S.Clock;
      Out.push_back(It->second.E);
    }
  }
}

bool GoalCache::insert(const Key &K, EntryPtr E) {
  assert(E && "inserting a null entry");
  Shard &S = shardFor(K.Hash);
  std::lock_guard<std::mutex> Lock(S.M);
  auto Range = S.Map.equal_range(K.Hash);
  for (auto It = Range.first; It != Range.second; ++It)
    if (It->second.K == K && It->second.E->Deps == E->Deps)
      return false; // Keep-first: concurrent recorders are equivalent.
  if (S.Map.size() >= PerShardCap) {
    // LRU-ish: evict the least-recently-used entry of this shard. A
    // linear scan is fine — eviction only triggers at capacity, and
    // shards stay small at the default configuration.
    auto Victim = S.Map.begin();
    for (auto It = S.Map.begin(); It != S.Map.end(); ++It)
      if (It->second.LastUsed < Victim->second.LastUsed)
        Victim = It;
    S.Map.erase(Victim);
    ++S.Evictions;
  }
  Stored St;
  St.K = K;
  St.E = std::move(E);
  St.LastUsed = ++S.Clock;
  S.Map.emplace(K.Hash, std::move(St));
  return true;
}

size_t GoalCache::size() const {
  size_t Total = 0;
  for (unsigned I = 0; I != NumShards; ++I) {
    std::lock_guard<std::mutex> Lock(ShardTable[I].M);
    Total += ShardTable[I].Map.size();
  }
  return Total;
}

std::vector<std::pair<GoalCache::Key, GoalCache::EntryPtr>>
GoalCache::snapshot() const {
  std::vector<std::pair<Key, EntryPtr>> Out;
  for (unsigned I = 0; I != NumShards; ++I) {
    std::lock_guard<std::mutex> Lock(ShardTable[I].M);
    for (const auto &[Hash, St] : ShardTable[I].Map)
      Out.emplace_back(St.K, St.E);
  }
  // Shard iteration order is unordered_multimap order — not stable.
  // Sort on the full key (and, for same-key dependency variants, the
  // dependency units) so the snapshot is a pure function of contents.
  auto DepLess = [](const DepUnit &A, const DepUnit &B) {
    auto Tup = [](const DepUnit &U) {
      return std::tuple(static_cast<uint8_t>(U.K), U.Trait,
                        static_cast<uint8_t>(U.HasHead), U.HeadKind,
                        U.HeadName, U.HeadTraitName, U.HeadArity,
                        U.HeadMutable, U.Fp);
    };
    return Tup(A) < Tup(B);
  };
  std::sort(Out.begin(), Out.end(), [&](const auto &A, const auto &B) {
    if (A.first.Hash != B.first.Hash)
      return A.first.Hash < B.first.Hash;
    if (A.first.FlagsFp != B.first.FlagsFp)
      return A.first.FlagsFp < B.first.FlagsFp;
    auto SpanTup = [](const Span &S) {
      return std::tuple(S.File.isValid() ? S.File.value() + 1u : 0u,
                        S.Begin, S.End);
    };
    if (SpanTup(A.first.Origin) != SpanTup(B.first.Origin))
      return SpanTup(A.first.Origin) < SpanTup(B.first.Origin);
    if (A.first.Pred != B.first.Pred)
      return A.first.Pred < B.first.Pred;
    const CacheEnc Empty;
    const CacheEnc &EnvA = A.first.Env ? *A.first.Env : Empty;
    const CacheEnc &EnvB = B.first.Env ? *B.first.Env : Empty;
    if (EnvA != EnvB)
      return EnvA < EnvB;
    // Same key: order the dependency-set variants.
    return std::lexicographical_compare(
        A.second->Deps.begin(), A.second->Deps.end(),
        B.second->Deps.begin(), B.second->Deps.end(), DepLess);
  });
  return Out;
}

uint64_t GoalCache::evictions() const {
  uint64_t Total = 0;
  for (unsigned I = 0; I != NumShards; ++I) {
    std::lock_guard<std::mutex> Lock(ShardTable[I].M);
    Total += ShardTable[I].Evictions;
  }
  return Total;
}
