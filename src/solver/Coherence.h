//===- solver/Coherence.h - Overlap and orphan checking -------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Coherence checks for a Program's impls: pairwise overlap detection
/// (two impls of one trait whose headers unify — the reason Bevy needs
/// marker type parameters, Section 2.3) and the orphan rule (no impl of
/// an external trait for an external type — the rule behind the inertia
/// heuristic's locality categories, Section 3.3).
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_SOLVER_COHERENCE_H
#define ARGUS_SOLVER_COHERENCE_H

#include "tlang/Program.h"

#include <string>
#include <vector>

namespace argus {

struct CoherenceError {
  enum class Kind : uint8_t { Overlap, Orphan };
  Kind ErrorKind;
  ImplId First;
  ImplId Second; ///< Overlap only.
  std::string Message;
};

/// Returns true if the headers of \p A and \p B can unify, i.e. some type
/// could be covered by both impls. Where-clauses are deliberately ignored
/// (as in Rust without specialization).
bool implsOverlap(const Program &Prog, const ImplDecl &A, const ImplDecl &B);

/// Returns true if \p Decl breaks the (simplified) orphan rule: an
/// external trait implemented for a type whose head constructor is
/// external.
bool violatesOrphanRule(const Program &Prog, const ImplDecl &Decl);

/// Runs both checks over every impl in \p Prog.
std::vector<CoherenceError> checkCoherence(const Program &Prog);

} // namespace argus

#endif // ARGUS_SOLVER_COHERENCE_H
