//===- solver/InferContext.h - Unification machinery ----------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Inference variables and first-order unification with occurs check. The
/// trail-based snapshot/rollback mechanism lets the solver try a candidate
/// impl, observe the outcome, and back out its bindings — the same shape
/// rustc's `InferCtxt::probe` has.
///
/// Regions unify permissively: Rust's trait solving is region-erased, and
/// so is ours.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_SOLVER_INFERCONTEXT_H
#define ARGUS_SOLVER_INFERCONTEXT_H

#include "tlang/Predicate.h"
#include "tlang/TypeArena.h"

#include <vector>

namespace argus {

class InferContext {
public:
  /// \p FirstFresh must be above every inference-variable index already
  /// present in the program's goals.
  InferContext(TypeArena &Arena, uint32_t FirstFresh)
      : Arena(&Arena), Bindings(FirstFresh, TypeId::invalid()) {}

  /// Creates a fresh, unbound inference variable.
  TypeId freshVar();

  uint32_t numVars() const { return static_cast<uint32_t>(Bindings.size()); }

  bool isBound(uint32_t Index) const {
    return Index < Bindings.size() && Bindings[Index].isValid();
  }

  /// The current binding of \p Index (invalid if unbound).
  TypeId binding(uint32_t Index) const {
    return Index < Bindings.size() ? Bindings[Index] : TypeId::invalid();
  }

  /// Fully substitutes bound inference variables in \p T.
  TypeId resolve(TypeId T) const;

  /// Substitutes only at the root, following binding chains.
  TypeId shallowResolve(TypeId T) const;

  /// Resolves all types inside \p P.
  Predicate resolve(const Predicate &P) const;

  /// Structural unification; binds inference variables on success. On
  /// failure, bindings made during the attempt remain on the trail, so
  /// callers should snapshot/rollback around speculative unification.
  bool unify(TypeId A, TypeId B);

  /// One-sided structural match: true if \p Pattern can be made equal to
  /// \p Target by binding inference variables occurring in \p Pattern
  /// only — an unbound variable on the target side is a mismatch, not a
  /// binding site. This is the "impl head A is at least as general as
  /// impl head B" test the coherence-time index builder uses (instantiate
  /// A's generics with fresh variables, keep B rigid): direction matters,
  /// where plain unify() would also report overlap. Bindings remain on
  /// the trail on failure, exactly like unify(); snapshot/rollback around
  /// speculative matches.
  bool matchOneSided(TypeId Pattern, TypeId Target);

  /// Number of unbound inference variables occurring in \p T (after
  /// resolution), counting duplicates once.
  size_t countUnresolved(TypeId T) const;
  size_t countUnresolved(const Predicate &P) const;

  /// True if \p P contains no unbound inference variables.
  bool isFullyResolved(const Predicate &P) const;

  // --- Snapshots.
  using Snapshot = size_t;
  Snapshot snapshot() const { return Trail.size(); }
  void rollbackTo(Snapshot Snap);

  /// Number of bindings committed since construction (monotone except
  /// across rollbacks); used by the fixpoint loop to detect progress.
  size_t trailLength() const { return Trail.size(); }

  /// The variable index recorded at trail position \p I. The goal cache
  /// inspects the trail segment a recorded subtree produced to reject
  /// entries that bound variables they did not allocate.
  uint32_t trailVar(size_t I) const { return Trail[I]; }

  /// Binds \p Index (which must exist and be unbound) directly to
  /// \p Value, pushing a trail entry exactly as unification would. This
  /// is the goal cache's splice primitive: replaying a recorded subtree's
  /// bindings in trail order reproduces the uncached run's binding state
  /// and trail length byte-for-byte.
  void bindRaw(uint32_t Index, TypeId Value) { bind(Index, Value); }

private:
  void bind(uint32_t Index, TypeId T);

  TypeArena *Arena;
  std::vector<TypeId> Bindings;
  std::vector<uint32_t> Trail;
};

} // namespace argus

#endif // ARGUS_SOLVER_INFERCONTEXT_H
