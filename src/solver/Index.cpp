//===- solver/Index.cpp ---------------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The reachability argument, in full, because the correctness bar is
// byte-identical trees with pruning on or off:
//
// Every trait predicate the solver ever *enumerates impls for* is a
// substitution instance of declared material — a program goal, a goal
// environment assumption's elaboration, an impl or trait where-clause
// instantiated by candidate assembly, an associated-type bound whose
// subject is an impl binding instance, or the trait bound a NormalizesTo
// node derives from a projection type node. Substitution maps Param
// leaves and never rewrites an interior constructor, so two facts about
// the declared predicate survive into every instance:
//
//  - the (trait, argument-count) pair is fixed, and
//  - a rigid root constructor of the subject (Adt, Ref, Tuple, FnPtr,
//    FnDef, Unit, Error) is fixed; only Param / Infer / Projection roots
//    can become arbitrary types at solve time.
//
// So if no declared predicate (or projection node) mentions an impl's
// (trait, arity) pair at all, no goal ever walks that impl's slice at a
// matching arity — and a goal at a *different* arity that does walk it
// fails unifyTraitHead's argument-count check, which leaves no trace in
// the forest. Likewise, if every reachable subject root for the pair is
// rigid and none equals the impl's head key, head unification fails at
// the root compare — again traceless. Removing such an impl from the
// prebuilt slices therefore changes no proof tree, only the work done.
//
// Anything uncertain collapses to "top" (every head reachable), which is
// why blanket impls, impls reachable only under environment assumptions,
// and overlapping-but-distinct concrete impls are never pruned.
//
//===----------------------------------------------------------------------===//

#include "solver/Index.h"

#include "solver/InferContext.h"
#include "tlang/Printer.h"

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace argus;

namespace {

/// The reachable self-type head set of one (trait, arity) pair.
struct HeadSet {
  bool Top = false; ///< Some reachable subject root is non-rigid.
  std::unordered_set<ImplHeadKey, ImplHeadKeyHasher> Heads;
};

/// (trait symbol, arity) packed for map keying.
uint64_t pairKey(Symbol Trait, size_t Arity) {
  return (static_cast<uint64_t>(Trait.value()) << 32) |
         static_cast<uint32_t>(Arity);
}

/// Build staging pooled in the Session scratch (SlotIndexBuild): the
/// reachability tables' bucket capacity survives across EditSession
/// revisions, where the index is rebuilt per Program.
struct IndexBuildScratch {
  std::unordered_map<uint64_t, HeadSet> Pairs;
  std::vector<uint32_t> InferVars;

  void clear() {
    Pairs.clear();
    InferVars.clear();
  }
};

class ReachAnalysis {
public:
  ReachAnalysis(const Program &Prog, IndexBuildScratch &Scr)
      : Prog(Prog), Arena(Prog.session().types()), Pairs(Scr.Pairs) {}

  /// Collects every declared predicate and projection node. The walk is
  /// linear in the size of the declarations.
  void run() {
    for (const GoalDecl &Goal : Prog.goals()) {
      addPredicate(Goal.Pred);
      for (const Predicate &Env : Goal.Env)
        addPredicate(Env);
    }
    for (const TraitDecl &Trait : Prog.traits()) {
      for (const Predicate &Where : Trait.WhereClauses)
        addPredicate(Where);
      // Associated-type bound obligations have their subject replaced by
      // an impl binding instance at assembly time; the binding types are
      // walked below, and the bound itself contributes its pair with an
      // unconstrained (top) head.
      for (const AssocTypeDecl &Assoc : Trait.AssocTypes)
        for (const Predicate &Bound : Assoc.Bounds)
          addPredicateTopSubject(Bound);
    }
    for (const ImplDecl &Impl : Prog.impls()) {
      for (const Predicate &Where : Impl.WhereClauses)
        addPredicate(Where);
      walkType(Impl.SelfTy);
      for (TypeId Arg : Impl.TraitArgs)
        walkType(Arg);
      for (const auto &[Name, Ty] : Impl.Bindings)
        walkType(Ty);
    }
    for (const FnDecl &Fn : Prog.fns()) {
      for (TypeId Param : Fn.Params)
        walkType(Param);
      walkType(Fn.Ret);
    }
  }

  /// Null when the pair is never queried; otherwise its head set.
  const HeadSet *lookup(Symbol Trait, size_t Arity) const {
    auto It = Pairs.find(pairKey(Trait, Arity));
    return It == Pairs.end() ? nullptr : &It->second;
  }

private:
  HeadSet &pairOf(Symbol Trait, size_t Arity) {
    return Pairs[pairKey(Trait, Arity)];
  }

  /// Contributes \p Subject's root to the pair's head set. Param and
  /// Infer roots instantiate to anything; a Projection root may be
  /// rewritten by normalization into whatever an impl binds. All three
  /// collapse to top.
  void contributeSubject(HeadSet &Set, TypeId Subject) {
    if (Set.Top)
      return;
    const Type &Root = Arena.get(Subject);
    if (Root.Kind == TypeKind::Param || Root.Kind == TypeKind::Infer ||
        Root.Kind == TypeKind::Projection) {
      Set.Top = true;
      return;
    }
    if (std::optional<ImplHeadKey> Key = Program::headKeyOf(Arena, Subject))
      Set.Heads.insert(*Key);
    else
      Set.Top = true;
  }

  void addPredicate(const Predicate &P) {
    if (P.Kind == PredicateKind::Trait && P.Trait.isValid())
      contributeSubject(pairOf(P.Trait, P.Args.size()), P.Subject);
    walkPredicateTypes(P);
  }

  void addPredicateTopSubject(const Predicate &P) {
    if (P.Kind == PredicateKind::Trait && P.Trait.isValid())
      pairOf(P.Trait, P.Args.size()).Top = true;
    walkPredicateTypes(P);
  }

  void walkPredicateTypes(const Predicate &P) {
    if (P.Subject.isValid())
      walkType(P.Subject);
    for (TypeId Arg : P.Args)
      walkType(Arg);
    if (P.Rhs.isValid())
      walkType(P.Rhs);
  }

  /// Every projection node tau = <T as Trait<Args>>::Assoc reachable in a
  /// declared type can become a NormalizesTo goal, which poses the trait
  /// bound `T: Trait<Args>` (see Solver::evalNormalizesTo). Substitution
  /// preserves the node, so the declared self argument's root analysis
  /// covers every instance.
  void walkType(TypeId T) {
    if (!T.isValid())
      return;
    const Type &Node = Arena.get(T);
    if (Node.Kind == TypeKind::Projection && Node.TraitName.isValid() &&
        !Node.Args.empty())
      contributeSubject(pairOf(Node.TraitName, Node.Args.size() - 1),
                        Node.Args[0]);
    for (TypeId Arg : Node.Args)
      walkType(Arg);
  }

  const Program &Prog;
  const TypeArena &Arena;
  std::unordered_map<uint64_t, HeadSet> &Pairs;
};

/// True if the impl's declared self root can match any head (the addImpl
/// wildcard condition): a root inference variable, or a root generic
/// parameter of the impl.
bool isWildcardImpl(const Program &Prog, const ImplDecl &Decl) {
  const Type &Root = Prog.session().types().get(Decl.SelfTy);
  if (Root.Kind == TypeKind::Infer)
    return true;
  if (Root.Kind != TypeKind::Param)
    return false;
  for (Symbol Generic : Decl.Generics)
    if (Generic == Root.Name)
      return true;
  return false;
}

/// 1 + the largest inference-variable index appearing in any impl head,
/// so the shadow-detection InferContext can bind declared Infer nodes.
uint32_t firstFreshVarOf(const Program &Prog, IndexBuildScratch &Scr) {
  const TypeArena &Arena = Prog.session().types();
  uint32_t First = 0;
  Scr.InferVars.clear();
  for (const ImplDecl &Impl : Prog.impls()) {
    Arena.collectInferVars(Impl.SelfTy, Scr.InferVars);
    for (TypeId Arg : Impl.TraitArgs)
      Arena.collectInferVars(Arg, Scr.InferVars);
  }
  for (uint32_t Var : Scr.InferVars)
    First = std::max(First, Var + 1);
  return First;
}

/// Does \p General's head, with its generics instantiated fresh, match
/// \p Specific's head one-sidedly (Specific kept rigid)? This is "at
/// least as general as" under the solver's selection rules: every goal
/// head Specific can unify with, General can too.
bool headGeneralizes(const Program &Prog, InferContext &Infcx,
                     const ImplDecl &General, const ImplDecl &Specific) {
  if (General.TraitArgs.size() != Specific.TraitArgs.size())
    return false;
  TypeArena &Arena = Prog.session().types();
  InferContext::Snapshot Snap = Infcx.snapshot();
  ParamSubst Subst;
  for (Symbol Generic : General.Generics)
    Subst.emplace(Generic, Infcx.freshVar());
  bool Matches =
      Infcx.matchOneSided(Arena.substitute(General.SelfTy, Subst),
                          Specific.SelfTy);
  for (size_t I = 0; Matches && I != General.TraitArgs.size(); ++I)
    Matches = Infcx.matchOneSided(
        Arena.substitute(General.TraitArgs[I], Subst),
        Specific.TraitArgs[I]);
  Infcx.rollbackTo(Snap);
  return Matches;
}

} // namespace

SolverIndexStats argus::buildSolverIndex(Program &Prog,
                                         const SolverIndexOptions &Opts) {
  SolverIndexStats Stats;
  ExecutionBudget *Budget = Opts.Budget;

  ScratchBorrow<IndexBuildScratch> Borrow;
  Borrow.acquire(Prog.session().scratch(), SolveScratch::SlotIndexBuild,
                 tagOfUid(Prog.uid()), nullptr);
  IndexBuildScratch &Scr = *Borrow.get();
  Scr.clear(); // Staging only; the borrow reuses capacity, not contents.

  Prog.beginSolverIndex(Opts.EnableSubsumption);

  size_t Notes = 0;
  auto Note = [&](std::string Text) {
    if (Notes++ < Opts.MaxTraceNotes)
      Prog.addIndexNote(std::move(Text));
  };

  if (Opts.EnableSubsumption) {
    TypePrinter Printer(Prog);
    ReachAnalysis Reach(Prog, Scr);
    Reach.run();

    // Inprocessing part 1: prune impls no reachable goal shape can ever
    // assemble.
    for (const ImplDecl &Impl : Prog.impls()) {
      if (Budget && Budget->tick()) {
        Prog.discardSolverIndex();
        return Stats;
      }
      if (!Impl.Trait.isValid())
        continue;
      const HeadSet *Set = Reach.lookup(Impl.Trait, Impl.TraitArgs.size());
      if (!Set) {
        Prog.markSubsumed(Impl.Id);
        Note("subsumed: " + Printer.printImplHeader(Impl) +
             " (no reachable goal mentions this trait shape)");
        continue;
      }
      if (Set->Top || isWildcardImpl(Prog, Impl))
        continue;
      std::optional<ImplHeadKey> Head =
          Program::headKeyOf(Prog.session().types(), Impl.SelfTy);
      if (Head && !Set->Heads.count(*Head)) {
        Prog.markSubsumed(Impl.Id);
        Note("subsumed: " + Printer.printImplHeader(Impl) +
             " (no reachable goal's self type has this head)");
      }
    }

    // Inprocessing part 2: surface head-generalization pairs. A blanket
    // (or otherwise more general) impl shadowing a concrete one is a
    // selection fact, not a pruning opportunity — both stay candidates,
    // and a goal both match reports ambiguity — so these are trace notes
    // only.
    InferContext Infcx(Prog.session().types(), firstFreshVarOf(Prog, Scr));
    for (const TraitDecl &Trait : Prog.traits()) {
      const std::vector<ImplId> &Impls = Prog.implsOf(Trait.Name);
      for (ImplId GeneralId : Impls) {
        const ImplDecl &General = Prog.impl(GeneralId);
        if (General.Generics.empty() &&
            !Prog.session().types().hasParams(General.SelfTy))
          continue; // A fully concrete head generalizes nothing but itself.
        for (ImplId SpecificId : Impls) {
          if (GeneralId == SpecificId)
            continue;
          if (Budget && Budget->tick()) {
            Prog.discardSolverIndex();
            return Stats;
          }
          const ImplDecl &Specific = Prog.impl(SpecificId);
          if (headGeneralizes(Prog, Infcx, General, Specific) &&
              !headGeneralizes(Prog, Infcx, Specific, General)) {
            ++Stats.ShadowedPairs;
            Note("shadowed: " + Printer.printImplHeader(Specific) +
                 " is strictly less general than " +
                 Printer.printImplHeader(General) +
                 " (kept: both remain candidates)");
          }
        }
      }
    }
  }

  if (Budget && Budget->stopped()) {
    Prog.discardSolverIndex();
    return Stats;
  }

  Prog.finishSolverIndex();
  Stats.Completed = true;
  Stats.ImplsSubsumed = Prog.subsumedImpls().size();
  return Stats;
}
