//===- solver/InferContext.cpp --------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/InferContext.h"

#include <algorithm>
#include <cassert>

using namespace argus;

TypeId InferContext::freshVar() {
  uint32_t Index = static_cast<uint32_t>(Bindings.size());
  Bindings.push_back(TypeId::invalid());
  return Arena->infer(Index);
}

void InferContext::bind(uint32_t Index, TypeId T) {
  assert(Index < Bindings.size() && "binding an unknown variable");
  assert(!Bindings[Index].isValid() && "rebinding a bound variable");
  Bindings[Index] = T;
  Trail.push_back(Index);
}

void InferContext::rollbackTo(Snapshot Snap) {
  assert(Snap <= Trail.size() && "rollback into the future");
  while (Trail.size() > Snap) {
    Bindings[Trail.back()] = TypeId::invalid();
    Trail.pop_back();
  }
}

TypeId InferContext::resolve(TypeId T) const {
  return Arena->substituteInfer(
      T, [this](uint32_t Index) { return binding(Index); });
}

TypeId InferContext::shallowResolve(TypeId T) const {
  const Type *Node = &Arena->get(T);
  while (Node->Kind == TypeKind::Infer && isBound(Node->InferIndex)) {
    T = Bindings[Node->InferIndex];
    Node = &Arena->get(T);
  }
  return T;
}

Predicate InferContext::resolve(const Predicate &P) const {
  Predicate Out = P;
  if (Out.Subject.isValid())
    Out.Subject = resolve(Out.Subject);
  for (TypeId &Arg : Out.Args)
    Arg = resolve(Arg);
  if (Out.Rhs.isValid())
    Out.Rhs = resolve(Out.Rhs);
  return Out;
}

bool InferContext::unify(TypeId A, TypeId B) {
  A = shallowResolve(A);
  B = shallowResolve(B);
  if (A == B)
    return true;

  const Type &NodeA = Arena->get(A);
  const Type &NodeB = Arena->get(B);

  if (NodeA.Kind == TypeKind::Infer) {
    if (Arena->occurs(resolve(B), NodeA.InferIndex))
      return false; // Occurs check: would build an infinite type.
    bind(NodeA.InferIndex, B);
    return true;
  }
  if (NodeB.Kind == TypeKind::Infer) {
    if (Arena->occurs(resolve(A), NodeB.InferIndex))
      return false;
    bind(NodeB.InferIndex, A);
    return true;
  }

  if (NodeA.Kind != NodeB.Kind)
    return false;

  switch (NodeA.Kind) {
  case TypeKind::Unit:
    return true;
  case TypeKind::Error:
    // Error types unify with nothing (including themselves, handled by
    // the A == B early-out above): failures should not cascade into
    // spurious successes.
    return true;
  case TypeKind::Param:
    return NodeA.Name == NodeB.Name;
  case TypeKind::Ref:
    // Regions are erased during trait solving.
    if (NodeA.Mutable != NodeB.Mutable)
      return false;
    return unify(NodeA.Args[0], NodeB.Args[0]);
  case TypeKind::Adt:
  case TypeKind::FnDef:
    if (NodeA.Name != NodeB.Name)
      return false;
    break;
  case TypeKind::Projection:
    // Rigid (unnormalized) projections unify only structurally; the
    // solver normalizes before unification where semantics demand it.
    if (NodeA.Name != NodeB.Name || NodeA.TraitName != NodeB.TraitName)
      return false;
    break;
  case TypeKind::Tuple:
  case TypeKind::FnPtr:
    break;
  case TypeKind::Infer:
    return false; // Unreachable: handled above.
  }

  if (NodeA.Args.size() != NodeB.Args.size())
    return false;
  for (size_t I = 0; I != NodeA.Args.size(); ++I)
    if (!unify(NodeA.Args[I], NodeB.Args[I]))
      return false;
  return true;
}

bool InferContext::matchOneSided(TypeId Pattern, TypeId Target) {
  Pattern = shallowResolve(Pattern);
  Target = shallowResolve(Target);
  if (Pattern == Target)
    return true;

  const Type &NodeP = Arena->get(Pattern);
  const Type &NodeT = Arena->get(Target);

  if (NodeP.Kind == TypeKind::Infer) {
    if (Arena->occurs(resolve(Target), NodeP.InferIndex))
      return false;
    bind(NodeP.InferIndex, Target);
    return true;
  }
  // The asymmetry: a target-side variable is not ours to bind.
  if (NodeT.Kind == TypeKind::Infer)
    return false;

  if (NodeP.Kind != NodeT.Kind)
    return false;

  switch (NodeP.Kind) {
  case TypeKind::Unit:
  case TypeKind::Error:
    return true;
  case TypeKind::Param:
    return NodeP.Name == NodeT.Name;
  case TypeKind::Ref:
    if (NodeP.Mutable != NodeT.Mutable)
      return false;
    return matchOneSided(NodeP.Args[0], NodeT.Args[0]);
  case TypeKind::Adt:
  case TypeKind::FnDef:
    if (NodeP.Name != NodeT.Name)
      return false;
    break;
  case TypeKind::Projection:
    if (NodeP.Name != NodeT.Name || NodeP.TraitName != NodeT.TraitName)
      return false;
    break;
  case TypeKind::Tuple:
  case TypeKind::FnPtr:
    break;
  case TypeKind::Infer:
    return false; // Unreachable: handled above.
  }

  if (NodeP.Args.size() != NodeT.Args.size())
    return false;
  for (size_t I = 0; I != NodeP.Args.size(); ++I)
    if (!matchOneSided(NodeP.Args[I], NodeT.Args[I]))
      return false;
  return true;
}

size_t InferContext::countUnresolved(TypeId T) const {
  std::vector<uint32_t> Vars;
  Arena->collectInferVars(resolve(T), Vars);
  std::sort(Vars.begin(), Vars.end());
  Vars.erase(std::unique(Vars.begin(), Vars.end()), Vars.end());
  return Vars.size();
}

size_t InferContext::countUnresolved(const Predicate &P) const {
  std::vector<uint32_t> Vars;
  if (P.Subject.isValid())
    Arena->collectInferVars(resolve(P.Subject), Vars);
  for (TypeId Arg : P.Args)
    Arena->collectInferVars(resolve(Arg), Vars);
  if (P.Rhs.isValid())
    Arena->collectInferVars(resolve(P.Rhs), Vars);
  std::sort(Vars.begin(), Vars.end());
  Vars.erase(std::unique(Vars.begin(), Vars.end()), Vars.end());
  return Vars.size();
}

bool InferContext::isFullyResolved(const Predicate &P) const {
  return countUnresolved(P) == 0;
}
