//===- solver/Solver.cpp --------------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/Solver.h"

#include <algorithm>
#include <cassert>
#include <span>
#include <unordered_set>

using namespace argus;

namespace {

/// Outcome of evaluating a trait goal, beyond the result itself: which
/// candidate won and with what instantiation. Projection normalization
/// uses this to read associated-type bindings out of the winning impl.
struct TraitEvalInfo {
  CandidateKind WinnerKind = CandidateKind::Builtin;
  ImplId WinnerImpl;
  ParamSubst WinnerSubst;
  bool HasWinner = false;
};

/// Salts separating the two stack-hash domains shared by stackHashOf
/// (consumer ancestor hashes) and finishRecording (recorded subtree
/// hashes): NormalizesTo goals compare by subject only (onStack ignores
/// their fresh output var), everything else by full predicate. A single
/// definition keeps producer and consumer in the same domain by
/// construction — a silent drift would disable cycle admission.
constexpr uint64_t PredStackSalt = 0x505245445354ull;
constexpr uint64_t NtStackSalt = 0x4E545354ull;

/// Supertrait-elaborated environments and (when variable-free) their
/// canonical encodings, keyed by the address of the goal's Env vector.
/// Lives in the Session's SolveScratch so repeated solves over the same
/// Program skip the elaboration fixpoint and the env re-encode entirely
/// — the dominant fixed cost of small cached queries. Entries verify
/// their source contents on hit (addresses can be reused by temporaries),
/// and the slot tag pins the Program and cache-registry identities.
struct EnvElabCache {
  struct Rec {
    std::vector<Predicate> Source; ///< The un-elaborated env, verbatim.
    std::vector<Predicate> Preds;  ///< Closed under supertrait bounds.
    /// Encoding state: 0 = not attempted, 1 = cached (Enc valid; the
    /// assumptions contain no inference variables, so resolution is the
    /// identity under any binding state), 2 = has variables (must be
    /// re-encoded per solve against live bindings).
    uint8_t EncState = 0;
    std::shared_ptr<const CacheEnc> Enc;
    bool Elaborated = false;
  };
  std::unordered_map<const void *, Rec> ByEnv;
  void clear() { ByEnv.clear(); }
};

/// Kinds worth keying into the goal cache. The builtin leaf kinds
/// (Outlives, RegionOutlives, Sized, WellFormed) assemble exactly one
/// candidate without consulting the program; re-solving one is cheaper
/// than encoding its cache key, so the admission pre-check skips them
/// before any keying work happens.
bool cacheworthyKind(PredicateKind K) {
  switch (K) {
  case PredicateKind::Trait:
  case PredicateKind::Projection:
  case PredicateKind::NormalizesTo:
    return true;
  default:
    return false;
  }
}

} // namespace

struct Solver::Impl {
  const Program &Prog;
  Session &S;
  SolverOptions Opts;
  InferContext Infcx;

  /// Nodes are recorded into OutForest normally; the quiet commit phase
  /// (replaying a winning candidate to re-establish its bindings) records
  /// into Scratch instead so the displayed tree has no duplicates.
  ProofForest *OutForest = nullptr;
  ProofForest Scratch;
  bool Quiet = false;

  std::vector<Predicate> GoalStack;
  std::unordered_map<Predicate, EvalResult, PredicateHasher> Memo;
  uint64_t NumEvaluations = 0;
  uint64_t NumMemoHits = 0;
  uint64_t NumCandidatesFiltered = 0;
  uint64_t NumIndexBucketHits = 0;
  uint64_t NumExactPrunes = 0;
  uint64_t NumCacheAdmissionSkips = 0;
  uint64_t NumSolverSteps = 0;
  uint64_t NumCacheHits = 0;
  uint64_t NumCacheMisses = 0;
  uint64_t NumCacheInserts = 0;
  uint64_t NumCacheInsertsRejected = 0;
  uint64_t NumCacheCrossRevHits = 0;
  uint64_t NumCacheDiskHits = 0;
  uint64_t NumCacheDepMisses = 0;
  /// Latched when SolverOptions::Budget says stop: every goal evaluated
  /// from then on (including quiet replays) short-circuits to Overflow.
  bool BudgetStopped = false;
  bool EvalBudgetExhausted = false;

  // --- Goal-cache state (Opts.Cache != null).
  /// Canonical encoding of the elaborated env (resolved, raw variable
  /// indices), rebuilt by setEnv. When the environment still contains
  /// unresolved inference variables the encoding can go stale as other
  /// goals bind them, so lookups re-encode it on the fly.
  std::shared_ptr<const CacheEnc> EnvEnc;
  bool EnvHasVars = false;
  /// Precomputed envSeed() over the flags fingerprint + EnvEnc, valid
  /// while !EnvHasVars.
  uint64_t EnvKeySeed = 0;
  /// Tree-shaping solver flags folded into every cache key (Key::FlagsFp).
  uint64_t CacheFlagsFp = 0;
  /// Bridge between this session's interner and the cache's symbol
  /// registry. Engaged iff Opts.Cache.
  std::optional<CacheSymbolMap> CacheSyms;
  /// Scratch for lookups: entry variants under the current key. A member
  /// so the vector's capacity is reused; safe because the lookup section
  /// of evalGoal completes before any recursive evaluation starts.
  std::vector<GoalCache::EntryPtr> LookupScratch;
  /// Stack-conflict hash per GoalStack entry (parallel vector), so hit
  /// admission can test a recorded subtree's goals against the current
  /// ancestors without re-encoding the stack on every lookup.
  std::vector<uint64_t> CurStackHashes;
  /// Raw-mode encodings per TypeId, so the per-goal key and stack-hash
  /// encodes of a deep type cost a span copy after its first walk.
  /// Borrowed from the Session's SolveScratch (null without a cache):
  /// the memo survives across Solver instances over the same arena and
  /// registry, so a hot loop of small queries never re-walks its types.
  TypeEncodeMemo *RawEncMemo = nullptr;
  ScratchBorrow<TypeEncodeMemo> EncMemoBorrow;
  /// Session-scoped cache of supertrait elaborations and env encodings,
  /// also borrowed from SolveScratch; see EnvElabCache.
  ScratchBorrow<EnvElabCache> ElabBorrow;
  /// The Session's bump arena for per-solve transient arrays
  /// (instantiated trait-argument lists); rewound by beginSolve().
  BumpAllocator *FrameArena = nullptr;
  /// Key hashes whose recording this run already completed and rejected
  /// (ambiguous/overflow subtree, external binding, injected fault).
  /// Fully-resolved goals re-evaluate deterministically within a run, so
  /// re-recording one of these would only re-reject; the admission
  /// pre-check skips the whole recording apparatus instead.
  std::unordered_set<uint64_t> RejectedKeys;
  /// Scratch buffer for stackHashOf, reused across evaluations.
  CacheEnc StackHashScratch;
  /// The outermost recording frame. Only one subtree records at a time;
  /// nested cacheable goals get their own entries when they recur
  /// standalone later.
  struct RecFrame {
    GoalNodeId Root;
    uint32_t VarsBefore = 0;
    size_t TrailBefore = 0;
    uint64_t EvalsBefore = 0;
    size_t CandsBefore = 0;
    bool ExhaustedBefore = false;
    GoalCache::Key Key;
    /// Winner storage when the root's caller passed no TraitEvalInfo.
    TraitEvalInfo Winner;
    /// Program consultations of this subtree, in first-consultation
    /// order: one unit per distinct impl slice enumerated and per trait
    /// declaration read. Becomes Entry::Deps.
    std::vector<GoalCache::DepUnit> Deps;
    /// Parallel to Deps: enumerations of each ImplSlice unit (0 for
    /// TraitDecl units). Becomes Entry::SliceEnumCounts.
    std::vector<uint32_t> EnumCounts;
    /// Raw ImplId -> (index into Deps, position in that unit's
    /// sequence), so finishRecording can store positional impl
    /// references. First registration wins; an impl reachable through
    /// two units resolves identically through either once the
    /// dependency check has matched both sequences.
    std::unordered_map<uint32_t, std::pair<uint32_t, uint32_t>> ImplRef;
  };
  std::optional<RecFrame> Rec;
  /// Entries recorded by this run, not yet published to Opts.Cache.
  /// Publication happens once, at the end of an un-stopped solve: a run
  /// later stopped by its budget (deadline, cancellation, evaluation
  /// ceiling) must leave no entries behind, not even sound ones recorded
  /// before the stop. Pending entries still serve this run's own lookups
  /// through pendingLookup.
  std::vector<std::pair<GoalCache::Key, GoalCache::EntryPtr>> PendingInserts;
  /// Key.Hash -> PendingInserts index.
  std::unordered_multimap<uint64_t, size_t> PendingIndex;

  Impl(const Program &Prog, SolverOptions Opts)
      : Prog(Prog), S(Prog.session()), Opts(Opts),
        Infcx(S.types(), firstFreshVar(Prog)),
        // Predicate keys hash through the arena's cached structural
        // hashes (not raw ids) wherever the solver builds a map.
        Memo(16, PredicateHasher{&S.types()}) {
    // The legacy memo changes tree shape (FromCache stub nodes); the
    // splicing cache must not layer on top of it or cached and uncached
    // runs would diverge.
    if (this->Opts.EnableMemoization)
      this->Opts.Cache = nullptr;
    if (this->Opts.Cache) {
      CacheSyms.emplace(this->Opts.Cache->symbols(), S.interner());
      CacheFlagsFp = (this->Opts.EmitWellFormedGoals ? 1u : 0u) |
                     (this->Opts.EnableCandidateIndex ? 2u : 0u) |
                     (this->Opts.EnableMemoization ? 4u : 0u) |
                     (this->Opts.EnableSubsumption ? 8u : 0u);
      // Decoding a spliced subtree interns builtin names the consumer
      // may not have touched yet; pre-interning them in a fixed order
      // keeps the intern table on the layout a cold run would build, so
      // interner growth never depends on cache-hit order.
      for (const char *Name :
           {"Self", "normalize-subject", "ambiguous-self", "fn-item",
            "project", "normalize", "outlives", "region-outlives", "sized",
            "well-formed"})
        (void)S.name(Name);
    }

    // Borrow the Session's pooled scratch. The type-encode memo is only
    // meaningful with a cache (its contents are registry tokens); the
    // elaboration cache always pays off. Tags use process-unique uids,
    // never raw addresses of independently-owned objects (ABA).
    SolveScratch &Scr = S.scratch();
    if (this->Opts.Cache) {
      EncMemoBorrow.acquire(Scr, SolveScratch::SlotEncodeMemo,
                            tagOfUid(this->Opts.Cache->symbols().uid()),
                            &S.types());
      RawEncMemo = EncMemoBorrow.get();
    }
    ElabBorrow.acquire(Scr, SolveScratch::SlotElabCache, tagOfUid(Prog.uid()),
                       this->Opts.Cache
                           ? tagOfUid(this->Opts.Cache->symbols().uid())
                           : nullptr);
    FrameArena = &Scr.arena();
  }

  static uint32_t firstFreshVar(const Program &Prog);

  ProofForest &forest() { return Quiet ? Scratch : *OutForest; }
  TypeArena &arena() { return S.types(); }

  /// The current environment, closed under supertrait elaboration: an
  /// assumption `sigma: Ord` with `trait Ord: Eq` also justifies
  /// `sigma: Eq`, as in rustc's elaborated predicates. Points into the
  /// borrowed EnvElabCache record for the active goal's Env (stable for
  /// the borrow's lifetime); setEnv installs it.
  const std::vector<Predicate> *ElabEnv = nullptr;
  void setEnv(const std::vector<Predicate> &NewEnv);

  // --- Helpers.
  Predicate substPredicate(const Predicate &P, const ParamSubst &Subst);
  ParamSubst freshSubst(const std::vector<Symbol> &Generics);
  bool onStack(const Predicate &P) const;
  bool unifyTraitHead(const Predicate &Goal, TypeId SelfTy,
                      std::span<const TypeId> Args);

  // --- Evaluation.
  GoalNodeId evalGoal(const Predicate &P, uint32_t Depth, Span Origin,
                      TraitEvalInfo *Info);
  EvalResult evalTraitGoal(GoalNodeId NodeId, Predicate Pred, uint32_t Depth,
                           TraitEvalInfo *Info);
  EvalResult evalImplSubgoals(CandNodeId CandId, const ImplDecl &Decl,
                              const ParamSubst &Subst, TypeId SelfInst,
                              std::span<const TypeId> ArgsInst,
                              uint32_t Depth);
  EvalResult evalProjectionGoal(GoalNodeId NodeId, const Predicate &Pred,
                                uint32_t Depth);
  EvalResult evalNormalizesTo(GoalNodeId NodeId, const Predicate &Pred,
                              uint32_t Depth);
  EvalResult evalOutlivesGoal(GoalNodeId NodeId, const Predicate &Pred);
  EvalResult evalRegionOutlives(GoalNodeId NodeId, const Predicate &Pred);
  EvalResult evalSizedGoal(GoalNodeId NodeId, const Predicate &Pred);
  EvalResult evalWellFormedGoal(GoalNodeId NodeId, const Predicate &Pred);

  /// Re-establishes the bindings of the winning candidate (quietly) and
  /// reports its instantiation through \p Info.
  void applyWinner(const Predicate &Pred, const CandidateNode &Winner,
                   uint32_t Depth, TraitEvalInfo *Info);

  /// Normalizes projections nested inside \p T, attaching NormalizesTo
  /// subgoals to \p CandId. Returns the normalized type, or invalid if a
  /// nested normalization failed (with \p Blame set to that result).
  TypeId deepNormalize(TypeId T, CandNodeId CandId, uint32_t Depth,
                       Span Origin, EvalResult &Blame);

  /// True if every region inside \p Ty outlives \p Bound.
  bool regionsOutlive(TypeId Ty, Region Bound);
  static bool regionOutlives(Region Sub, Region Sup);

  // --- Goal cache (see GoalCache.h for the entry format).
  uint64_t stackHashOf(const Predicate &P);
  GoalCache::Key makeCacheKey(const Predicate &Resolved, Span Origin);
  bool cacheAdmissible(const GoalCache::Entry &E, uint32_t Depth) const;

  /// Result of a passing dependency check: the consumer-side slice for
  /// each ImplSlice unit of the entry (parallel to Entry::Deps, null for
  /// TraitDecl units), through which positional impl references resolve.
  struct DepCheck {
    std::vector<const Program::ImplSlice *> Slices;
  };
  /// Re-fingerprints every dependency unit of \p E against this solver's
  /// program. True iff all match (the entry's recorded subtree is exactly
  /// what a cold solve would produce here); fills \p DC on success.
  bool checkDeps(const GoalCache::Entry &E, DepCheck &DC);
  static bool diskEntrySane(const GoalCache::Entry &E, const DepCheck &DC);

  /// Registers one dependency unit on the active recording frame,
  /// deduplicating by unit identity; for slice units also registers
  /// every impl of the sequence in Frame.ImplRef. Returns the unit index.
  uint32_t addDepUnit(const GoalCache::DepUnit &U,
                      const Program::ImplSlice *Slice, uint32_t EnumCount);
  void noteImplSliceDep(Symbol Trait, const std::optional<ImplHeadKey> &Head,
                        const Program::ImplSlice &Slice);
  void noteTraitDep(Symbol Trait);
  /// A spliced hit's consultations become the enclosing frame's: its
  /// units carry fingerprints the check just validated against this
  /// program, and its slices re-register their impls for ImplRef.
  void noteDepsFromEntry(const GoalCache::Entry &E, const DepCheck &DC);

  void spliceEntry(const GoalCache::Entry &E, GoalNodeId NodeId,
                   uint32_t Depth, TraitEvalInfo *Info, const DepCheck &DC);
  void finishRecording(EvalResult Result, const TraitEvalInfo *CallerInfo);
  void pendingLookup(const GoalCache::Key &K,
                     std::vector<GoalCache::EntryPtr> &Out) const;
  void publishPending();
};

uint32_t Solver::Impl::firstFreshVar(const Program &Prog) {
  std::vector<uint32_t> Vars;
  const TypeArena &Arena = Prog.session().types();
  auto Scan = [&](const Predicate &P) {
    if (P.Subject.isValid())
      Arena.collectInferVars(P.Subject, Vars);
    for (TypeId Arg : P.Args)
      Arena.collectInferVars(Arg, Vars);
    if (P.Rhs.isValid())
      Arena.collectInferVars(P.Rhs, Vars);
  };
  for (const GoalDecl &Goal : Prog.goals()) {
    Scan(Goal.Pred);
    for (const Predicate &A : Goal.Env)
      Scan(A);
  }
  uint32_t First = 0;
  for (uint32_t Index : Vars)
    First = std::max(First, Index + 1);
  return First;
}

void Solver::Impl::setEnv(const std::vector<Predicate> &NewEnv) {
  // One elaboration per distinct environment per Program, remembered at
  // Session scope: solve loops (cache reps, revisions, batch jobs) hit
  // the memo instead of re-running the fixpoint per goal. The record is
  // keyed by the env vector's address but verified by content — an
  // address reused by a different env (stack temporaries in embedders)
  // re-elaborates in place.
  EnvElabCache::Rec &Cached = ElabBorrow.get()->ByEnv[&NewEnv];
  if (!Cached.Elaborated || Cached.Source != NewEnv) {
    Cached.Source = NewEnv;
    Cached.Preds = NewEnv;
    Cached.EncState = 0;
    Cached.Enc.reset();
    std::vector<Predicate> &Elab = Cached.Preds;
    std::unordered_set<Predicate, PredicateHasher> Seen(
        NewEnv.begin(), NewEnv.end(), 16, PredicateHasher{&arena()});
    // Fixpoint over supertrait bounds; the cap guards against
    // ever-growing supertrait argument types (trait A<X>: A<Vec<X>>).
    const size_t MaxElaborated = 256;
    for (size_t I = 0; I < Elab.size() && Elab.size() < MaxElaborated;
         ++I) {
      Predicate Assumption = Elab[I];
      if (Assumption.Kind != PredicateKind::Trait)
        continue;
      const TraitDecl *Trait = Prog.findTrait(Assumption.Trait);
      if (!Trait)
        continue;
      ParamSubst Subst;
      Subst.emplace(S.name("Self"), Assumption.Subject);
      for (size_t J = 0;
           J < Trait->Params.size() && J < Assumption.Args.size(); ++J)
        Subst.emplace(Trait->Params[J], Assumption.Args[J]);
      for (const Predicate &Where : Trait->WhereClauses) {
        if (Where.Kind != PredicateKind::Trait)
          continue;
        Predicate Elaborated = substPredicate(Where, Subst);
        if (Seen.insert(Elaborated).second)
          Elab.push_back(std::move(Elaborated));
      }
    }
    Cached.Elaborated = true;
  }
  ElabEnv = &Cached.Preds;

  if (Opts.Cache) {
    if (Cached.EncState == 0) {
      // First encode under this registry, over the *un-resolved*
      // assumptions: when no variable token appears, resolution is the
      // identity under any binding state, so the encoding is a constant
      // of (environment, registry) and cacheable across solves.
      auto Enc = std::make_shared<CacheEnc>();
      CacheEncoder Encoder(arena(), CacheEncoder::RawVars, RawEncMemo,
                           &*CacheSyms);
      for (const Predicate &Assumption : *ElabEnv)
        Encoder.pred(*Enc, Assumption);
      if (Encoder.sawVar()) {
        Cached.EncState = 2;
      } else {
        Cached.EncState = 1;
        Cached.Enc = std::move(Enc);
      }
    }
    if (Cached.EncState == 1) {
      EnvHasVars = false;
      EnvEnc = Cached.Enc;
      EnvKeySeed = GoalCache::envSeed(CacheFlagsFp, EnvEnc.get());
    } else {
      // The environment mentions inference variables: encode what
      // candidate assembly will actually see under the live bindings.
      auto Enc = std::make_shared<CacheEnc>();
      CacheEncoder Encoder(arena(), CacheEncoder::RawVars, RawEncMemo,
                           &*CacheSyms);
      for (const Predicate &Assumption : *ElabEnv)
        Encoder.pred(*Enc, Infcx.resolve(Assumption));
      EnvHasVars = Encoder.sawVar();
      EnvEnc = std::move(Enc);
      // A variable-free environment never re-encodes, so the
      // flags+environment hash prefix is a per-run constant.
      EnvKeySeed = EnvHasVars
                       ? 0
                       : GoalCache::envSeed(CacheFlagsFp, EnvEnc.get());
    }
  }
}

uint64_t Solver::Impl::stackHashOf(const Predicate &P) {
  CacheEnc &Enc = StackHashScratch;
  Enc.clear();
  CacheEncoder Encoder(arena(), CacheEncoder::RawVars, RawEncMemo,
                       &*CacheSyms);
  if (P.Kind == PredicateKind::NormalizesTo) {
    Encoder.type(Enc, P.Subject);
    return hashCacheEnc(Enc, NtStackSalt);
  }
  Encoder.pred(Enc, P);
  return hashCacheEnc(Enc, PredStackSalt);
}

GoalCache::Key Solver::Impl::makeCacheKey(const Predicate &Resolved,
                                          Span Origin) {
  GoalCache::Key Key;
  Key.FlagsFp = CacheFlagsFp;
  Key.Origin = Origin;
  CacheEncoder Encoder(arena(), CacheEncoder::RawVars, RawEncMemo,
                       &*CacheSyms);
  Encoder.pred(Key.Pred, Resolved);
  if (EnvHasVars) {
    // Other goals may have bound the environment's variables since
    // setEnv ran; re-encode so the key reflects what candidate assembly
    // will actually see.
    auto Fresh = std::make_shared<CacheEnc>();
    CacheEncoder EnvEncoder(arena(), CacheEncoder::RawVars, RawEncMemo,
                            &*CacheSyms);
    for (const Predicate &Assumption : *ElabEnv)
      EnvEncoder.pred(*Fresh, Infcx.resolve(Assumption));
    Key.Env = std::move(Fresh);
    GoalCache::finalizeKey(Key);
  } else {
    Key.Env = EnvEnc;
    Key.Hash = GoalCache::finishKeyHash(EnvKeySeed, Origin, Key.Pred);
  }
  return Key;
}

bool Solver::Impl::cacheAdmissible(const GoalCache::Entry &E,
                                   uint32_t Depth) const {
  // The uncached run would overflow past MaxDepth or the evaluation
  // budget partway through this subtree; treat the lookup as a miss so
  // the overflow nodes are reproduced byte-exactly.
  if (static_cast<uint64_t>(Depth) + E.MaxRelDepth > Opts.MaxDepth)
    return false;
  if (NumEvaluations - 1 + E.TotalEvals > Opts.MaxGoalEvaluations)
    return false;
  // A governed uncached run charges one work unit per evaluation in the
  // subtree; the root's own tick is already paid. If the stage's work
  // ceiling cannot absorb the rest, the uncached run would trip mid-
  // subtree and emit Overflow nodes the entry does not contain, so the
  // lookup must miss and reproduce them.
  if (Opts.Budget && E.TotalEvals > 0 &&
      E.TotalEvals - 1 > Opts.Budget->stageWorkRemaining())
    return false;
  // A goal inside the recorded subtree structurally matching one of the
  // current ancestors would have been a cycle (Overflow) here.
  if (!E.StackHashes.empty())
    for (uint64_t AncestorHash : CurStackHashes)
      if (std::binary_search(E.StackHashes.begin(), E.StackHashes.end(),
                             AncestorHash))
        return false;
  return true;
}

/// Residual positional check for entries loaded from a persisted image.
/// The loader proves every Impl reference names an ImplSlice dependency
/// unit, but the position within the slice can only be checked against a
/// live program's slice — which the dependency check just resolved into
/// \p DC. A live-recorded entry cannot fail this (the recorder took the
/// positions from the very slice the fingerprint pins), so the walk runs
/// for FromDisk entries only; MapImpl below would otherwise index past
/// the sequence on a forged image in release builds.
bool Solver::Impl::diskEntrySane(const GoalCache::Entry &E,
                                 const DepCheck &DC) {
  auto PosOk = [&](uint32_t Unit, uint32_t Pos) {
    if (Unit == GoalCache::NoId)
      return true;
    const Program::ImplSlice *Slice =
        Unit < DC.Slices.size() ? DC.Slices[Unit] : nullptr;
    return Slice && Pos < Slice->Seq.size();
  };
  for (const GoalCache::CandRec &C : E.Cands)
    if (C.Kind == CandidateKind::Impl && !PosOk(C.ImplUnit, C.ImplPos))
      return false;
  if (E.HasWinner && E.WinnerKind == CandidateKind::Impl &&
      !PosOk(E.WinnerImplUnit, E.WinnerImplPos))
    return false;
  return true;
}

bool Solver::Impl::checkDeps(const GoalCache::Entry &E, DepCheck &DC) {
  DC.Slices.clear();
  if (Opts.CacheForceDepMiss)
    return false;
  DC.Slices.reserve(E.Deps.size());
  for (const GoalCache::DepUnit &U : E.Deps) {
    if (U.K == GoalCache::DepUnit::Kind::TraitDecl) {
      DC.Slices.push_back(nullptr);
      // peek() never interns: a name this session has not seen cannot
      // belong to any declaration of this program, so the invalid symbol
      // correctly resolves to the missing-trait marker fingerprint.
      if (Prog.traitDeclFingerprint(CacheSyms->peek(U.Trait)) != U.Fp)
        return false;
      continue;
    }
    Symbol Trait = CacheSyms->peek(U.Trait);
    std::optional<ImplHeadKey> Head;
    if (U.HasHead) {
      ImplHeadKey K;
      K.Kind = static_cast<TypeKind>(U.HeadKind);
      K.Name = CacheSyms->peek(U.HeadName);
      K.TraitName = CacheSyms->peek(U.HeadTraitName);
      K.Arity = static_cast<uint32_t>(U.HeadArity);
      K.Mutable = U.HeadMutable != 0;
      Head = K;
    }
    const Program::ImplSlice &Slice = Prog.implSlice(Trait, Head);
    DC.Slices.push_back(&Slice);
    if (Prog.sliceFingerprint(Slice) != U.Fp)
      return false;
  }
  return true;
}

uint32_t Solver::Impl::addDepUnit(const GoalCache::DepUnit &U,
                                  const Program::ImplSlice *Slice,
                                  uint32_t EnumCount) {
  std::vector<GoalCache::DepUnit> &Deps = Rec->Deps;
  uint32_t Index = 0;
  for (; Index != Deps.size(); ++Index)
    if (Deps[Index].sameUnit(U)) {
      // Same unit identity within one run means the same fingerprint —
      // both were computed against this program.
      Rec->EnumCounts[Index] += EnumCount;
      return Index;
    }
  Deps.push_back(U);
  Rec->EnumCounts.push_back(EnumCount);
  if (Slice)
    for (uint32_t Pos = 0;
         Pos != static_cast<uint32_t>(Slice->Seq.size()); ++Pos)
      Rec->ImplRef.try_emplace(Slice->Seq[Pos].value(),
                               std::make_pair(Index, Pos));
  return Index;
}

void Solver::Impl::noteImplSliceDep(Symbol Trait,
                                    const std::optional<ImplHeadKey> &Head,
                                    const Program::ImplSlice &Slice) {
  GoalCache::DepUnit U;
  U.K = GoalCache::DepUnit::Kind::ImplSlice;
  U.Trait = CacheSyms->token(Trait);
  if (Head) {
    U.HasHead = true;
    U.HeadKind = static_cast<uint64_t>(Head->Kind);
    U.HeadName = CacheSyms->token(Head->Name);
    U.HeadTraitName = CacheSyms->token(Head->TraitName);
    U.HeadArity = Head->Arity;
    U.HeadMutable = Head->Mutable ? 1 : 0;
  }
  U.Fp = Prog.sliceFingerprint(Slice);
  (void)addDepUnit(U, &Slice, 1);
}

void Solver::Impl::noteTraitDep(Symbol Trait) {
  GoalCache::DepUnit U;
  U.K = GoalCache::DepUnit::Kind::TraitDecl;
  U.Trait = CacheSyms->token(Trait);
  U.Fp = Prog.traitDeclFingerprint(Trait);
  (void)addDepUnit(U, nullptr, 0);
}

void Solver::Impl::noteDepsFromEntry(const GoalCache::Entry &E,
                                     const DepCheck &DC) {
  for (size_t I = 0; I != E.Deps.size(); ++I)
    (void)addDepUnit(E.Deps[I], DC.Slices[I],
                     I < E.SliceEnumCounts.size() ? E.SliceEnumCounts[I]
                                                  : 0);
}

Predicate Solver::Impl::substPredicate(const Predicate &P,
                                       const ParamSubst &Subst) {
  Predicate Out = P;
  if (Out.Subject.isValid())
    Out.Subject = arena().substitute(Out.Subject, Subst);
  for (TypeId &Arg : Out.Args)
    Arg = arena().substitute(Arg, Subst);
  if (Out.Rhs.isValid())
    Out.Rhs = arena().substitute(Out.Rhs, Subst);
  return Out;
}

ParamSubst Solver::Impl::freshSubst(const std::vector<Symbol> &Generics) {
  ParamSubst Subst;
  for (Symbol Generic : Generics)
    Subst.emplace(Generic, Infcx.freshVar());
  return Subst;
}

bool Solver::Impl::onStack(const Predicate &P) const {
  for (const Predicate &Ancestor : GoalStack) {
    if (Ancestor.Kind != P.Kind)
      continue;
    // NormalizesTo goals get a fresh output variable each time, so cycle
    // detection compares them modulo the output (Rhs).
    if (P.Kind == PredicateKind::NormalizesTo) {
      if (Ancestor.Subject == P.Subject)
        return true;
      continue;
    }
    if (Ancestor == P)
      return true;
  }
  return false;
}

bool Solver::Impl::unifyTraitHead(const Predicate &Goal, TypeId SelfTy,
                                  std::span<const TypeId> Args) {
  if (Goal.Args.size() != Args.size())
    return false;
  if (!Infcx.unify(Goal.Subject, SelfTy))
    return false;
  for (size_t I = 0; I != Args.size(); ++I)
    if (!Infcx.unify(Goal.Args[I], Args[I]))
      return false;
  return true;
}

GoalNodeId Solver::Impl::evalGoal(const Predicate &P, uint32_t Depth,
                                  Span Origin, TraitEvalInfo *Info) {
  ++NumEvaluations;
  if (Opts.Budget && !BudgetStopped && Opts.Budget->tick())
    BudgetStopped = true;
#ifdef ARGUS_TRACE_EVAL
  fprintf(stderr, "eval #%llu depth=%u kind=%d quiet=%d stack=%zu vars=%u\n",
          (unsigned long long)NumEvaluations, Depth, (int)P.Kind, (int)Quiet,
          GoalStack.size(), Infcx.numVars());
#endif
  Predicate Resolved = Infcx.resolve(P);

  GoalNodeId NodeId = forest().makeGoal();
  {
    GoalNode &Node = forest().goal(NodeId);
    Node.Pred = Resolved;
    Node.Depth = Depth;
    Node.Origin = Origin;
  }

  if (Depth > Opts.MaxDepth || onStack(Resolved) ||
      NumEvaluations > Opts.MaxGoalEvaluations || BudgetStopped) {
    if (NumEvaluations > Opts.MaxGoalEvaluations)
      EvalBudgetExhausted = true;
    forest().goal(NodeId).Result = EvalResult::Overflow;
    return NodeId;
  }

  bool FullyResolved = Infcx.isFullyResolved(Resolved);
  if (Opts.EnableMemoization && FullyResolved) {
    auto It = Memo.find(Resolved);
    if (It != Memo.end()) {
      ++NumMemoHits;
      GoalNode &Node = forest().goal(NodeId);
      Node.Result = It->second;
      Node.FromCache = true;
      return NodeId;
    }
  }

  TraitEvalInfo *EffInfo = Info;
  if (Opts.Cache && (!FullyResolved || !cacheworthyKind(Resolved.Kind))) {
    // Admission pre-check, before any keying work: goals containing
    // inference variables are never cacheable, and the builtin leaf
    // kinds are cheaper to re-solve than to key.
    ++NumCacheAdmissionSkips;
  } else if (Opts.Cache) {
    GoalCache::Key Key = makeCacheKey(Resolved, Origin);
    LookupScratch.clear();
    Opts.Cache->lookup(Key, LookupScratch);
    size_t NumShared = LookupScratch.size();
    pendingLookup(Key, LookupScratch); // This run's unpublished entries.
    // A key can hold one entry variant per distinct dependency set; at
    // most one variant can pass the dependency check against this
    // program (two passing variants would have recorded identical trees
    // and been deduplicated at insert), so taking the first passing one
    // is order-independent.
    const GoalCache::Entry *Hit = nullptr;
    bool FromShared = false;
    bool AnyDepFail = false;
    DepCheck DC;
    for (size_t I = 0; I != LookupScratch.size(); ++I) {
      const GoalCache::Entry &Variant = *LookupScratch[I];
      if (!cacheAdmissible(Variant, Depth))
        continue;
      if (!checkDeps(Variant, DC)) {
        AnyDepFail = true;
        continue;
      }
      // Disk-loaded entries carry positional impl references that were
      // validated structurally but not against a live program; a forged
      // position that survived the fingerprint check must miss, never
      // index out of the consumer's slice.
      if (Variant.FromDisk && !diskEntrySane(Variant, DC)) {
        AnyDepFail = true;
        continue;
      }
      Hit = &Variant;
      FromShared = I < NumShared;
      break;
    }
    if (AnyDepFail && !Hit)
      ++NumCacheDepMisses;
    if (Hit) {
      ++NumCacheHits;
      if (FromShared)
        ++NumCacheCrossRevHits;
      if (Hit->FromDisk)
        ++NumCacheDiskHits;
      // The hit's consultations become the enclosing recording frame's
      // dependencies (quiet or not: a probe's shape is visible work).
      if (Rec)
        noteDepsFromEntry(*Hit, DC);
      spliceEntry(*Hit, NodeId, Depth, Info, DC);
      return NodeId;
    }
    ++NumCacheMisses;
    // Record only the outermost cacheable frame (and never the quiet
    // commit replay, whose nodes land in Scratch): nested repeats get
    // their own entries when they recur standalone.
    if (!Quiet && !Rec) {
      if (RejectedKeys.count(Key.Hash)) {
        // This run already recorded and rejected this key (ambiguous or
        // overflowing subtree, external binding, injected fault); a
        // fully-resolved goal re-evaluates deterministically within a
        // run, so re-recording would only re-reject. Skip the whole
        // recording apparatus and just solve.
        ++NumCacheAdmissionSkips;
      } else {
        Rec.emplace();
        Rec->Root = NodeId;
        Rec->VarsBefore = Infcx.numVars();
        Rec->TrailBefore = Infcx.trailLength();
        Rec->EvalsBefore = NumEvaluations - 1;
        Rec->CandsBefore = OutForest->numCandidates();
        Rec->ExhaustedBefore = EvalBudgetExhausted;
        Rec->Key = std::move(Key);
        if (!EffInfo)
          EffInfo = &Rec->Winner;
      }
    }
  }

  ++NumSolverSteps;
  GoalStack.push_back(Resolved);
  if (Opts.Cache)
    CurStackHashes.push_back(stackHashOf(Resolved));
  EvalResult Result = EvalResult::Maybe;
  switch (Resolved.Kind) {
  case PredicateKind::Trait:
    Result = evalTraitGoal(NodeId, Resolved, Depth, EffInfo);
    break;
  case PredicateKind::Projection:
    Result = evalProjectionGoal(NodeId, Resolved, Depth);
    break;
  case PredicateKind::NormalizesTo:
    Result = evalNormalizesTo(NodeId, Resolved, Depth);
    break;
  case PredicateKind::Outlives:
    Result = evalOutlivesGoal(NodeId, Resolved);
    break;
  case PredicateKind::RegionOutlives:
    Result = evalRegionOutlives(NodeId, Resolved);
    break;
  case PredicateKind::Sized:
    Result = evalSizedGoal(NodeId, Resolved);
    break;
  case PredicateKind::WellFormed:
    Result = evalWellFormedGoal(NodeId, Resolved);
    break;
  }
  GoalStack.pop_back();
  if (Opts.Cache)
    CurStackHashes.pop_back();

  forest().goal(NodeId).Result = Result;
  if (Opts.EnableMemoization && FullyResolved &&
      (Result == EvalResult::Yes || Result == EvalResult::No))
    Memo.emplace(Resolved, Result);
  // A Scratch node id from a quiet replay can numerically collide with
  // the frame root's OutForest id, so re-check Quiet here.
  if (Rec && !Quiet && Rec->Root == NodeId)
    finishRecording(Result, Info);
  return NodeId;
}

EvalResult Solver::Impl::evalTraitGoal(GoalNodeId NodeId, Predicate Pred,
                                       uint32_t Depth, TraitEvalInfo *Info) {
  // A projection subject is normalized before candidate assembly, as in
  // rustc: `<N as Node>::Info: Meta` first resolves Info, then proves the
  // bound on the result. The normalization is a stateful subtree that
  // extraction elides on success.
  TypeId ShallowSubject = Infcx.shallowResolve(Pred.Subject);
  bool SubjectNormalizes = false;
  if (arena().get(ShallowSubject).Kind == TypeKind::Projection) {
    // Quiet probe: does the projection actually resolve to something
    // new? A rigid projection (proved via an assumption) must fall
    // through to structural assembly or it would re-normalize forever.
    Span ProbeOrigin = forest().goal(NodeId).Origin;
    bool SavedQuiet = Quiet;
    Quiet = true;
    InferContext::Snapshot Snap = Infcx.snapshot();
    TypeId Probe = Infcx.freshVar();
    GoalNodeId ProbeGoal =
        evalGoal(Predicate::normalizesTo(ShallowSubject, Probe),
                 Depth + 1, ProbeOrigin, nullptr);
    EvalResult ProbeResult = forest().goal(ProbeGoal).Result;
    TypeId ProbeValue = Infcx.resolve(Probe);
    Infcx.rollbackTo(Snap);
    Quiet = SavedQuiet;
    SubjectNormalizes =
        ProbeResult != EvalResult::Yes || ProbeValue != ShallowSubject;
  }
  if (SubjectNormalizes) {
    Span Origin = forest().goal(NodeId).Origin;
    CandNodeId CandId = forest().makeCandidate();
    {
      CandidateNode &Cand = forest().candidate(CandId);
      Cand.Kind = CandidateKind::Builtin;
      Cand.BuiltinName = S.name("normalize-subject");
      Cand.Parent = NodeId;
    }
    forest().goal(NodeId).Candidates.push_back(CandId);

    TypeId OutVar = Infcx.freshVar();
    GoalNodeId NormGoal = evalGoal(
        Predicate::normalizesTo(Pred.Subject, OutVar), Depth + 1, Origin,
        nullptr);
    forest().candidate(CandId).SubGoals.push_back(NormGoal);
    forest().goal(NormGoal).ParentCandidate = CandId;
    EvalResult Result = forest().goal(NormGoal).Result;
    if (Result == EvalResult::Yes) {
      Predicate Retry = Pred;
      Retry.Subject = Infcx.resolve(OutVar);
      GoalNodeId Inner = evalGoal(Retry, Depth + 1, Origin, Info);
      forest().candidate(CandId).SubGoals.push_back(Inner);
      forest().goal(Inner).ParentCandidate = CandId;
      Result = forest().goal(Inner).Result;
    }
    forest().candidate(CandId).Result = Result;
    if (Result == EvalResult::Yes)
      forest().goal(NodeId).SelectedCandidate = CandId;
    return Result;
  }

  struct Attempt {
    CandNodeId Cand;
    EvalResult Result;
  };
  std::vector<Attempt> Attempts;

  // Impl enumeration needs a known self type: for `?X: Trait` every impl
  // would apply, so that part of assembly is immediately ambiguous,
  // exactly as in rustc (later fixpoint rounds retry once other goals
  // constrain the variable; this also keeps the uncached search finite).
  // Where-clause assumptions are still matched below — they do not
  // enumerate.
  bool SelfIsUnknown = arena()
                           .get(Infcx.shallowResolve(Pred.Subject))
                           .Kind == TypeKind::Infer;

  // Parameter-environment candidates: where-clause assumptions in scope
  // (closed under supertrait elaboration).
  {
    for (const Predicate &Assumption : *ElabEnv) {
      if (Assumption.Kind != PredicateKind::Trait ||
          Assumption.Trait != Pred.Trait)
        continue;
      InferContext::Snapshot Snap = Infcx.snapshot();
      bool Matches =
          unifyTraitHead(Pred, Assumption.Subject, Assumption.Args);
      Infcx.rollbackTo(Snap);
      if (!Matches)
        continue;
      CandNodeId CandId = forest().makeCandidate();
      CandidateNode &Cand = forest().candidate(CandId);
      Cand.Kind = CandidateKind::ParamEnv;
      Cand.Assumption = Assumption;
      Cand.Result = EvalResult::Yes;
      Cand.Parent = NodeId;
      forest().goal(NodeId).Candidates.push_back(CandId);
      Attempts.push_back({CandId, EvalResult::Yes});
    }
  }

  if (SelfIsUnknown) {
    CandNodeId CandId = forest().makeCandidate();
    CandidateNode &Cand = forest().candidate(CandId);
    Cand.Kind = CandidateKind::Builtin;
    Cand.BuiltinName = S.name("ambiguous-self");
    Cand.Result = EvalResult::Maybe;
    Cand.Parent = NodeId;
    forest().goal(NodeId).Candidates.push_back(CandId);
    Attempts.push_back({CandId, EvalResult::Maybe});
  }

  // Impl candidates: every impl of this trait whose header unifies.
  auto TryImpl = [&](ImplId ImplIdx) {
    const ImplDecl &Decl = Prog.impl(ImplIdx);
#ifdef ARGUS_TRACE_EVAL
    fprintf(stderr, "  try impl %u depth=%u\n", ImplIdx.value(), Depth);
#endif
    InferContext::Snapshot Snap = Infcx.snapshot();
    ParamSubst Subst = freshSubst(Decl.Generics);
    TypeId SelfInst = arena().substitute(Decl.SelfTy, Subst);
    // Exact-size bump allocation from the Session arena: attempt arrays
    // are dead once the attempt returns, and the arena rewinds at the
    // next solve, so the hot path never touches the heap for these.
    size_t NumArgs = Decl.TraitArgs.size();
    TypeId *ArgsData = FrameArena->allocArray<TypeId>(NumArgs);
    for (size_t I = 0; I != NumArgs; ++I)
      ArgsData[I] = arena().substitute(Decl.TraitArgs[I], Subst);
    std::span<const TypeId> ArgsInst(ArgsData, NumArgs);

    if (!unifyTraitHead(Pred, SelfInst, ArgsInst)) {
      // Head mismatch: like rustc, the candidate simply does not
      // assemble and leaves no trace in the tree.
      Infcx.rollbackTo(Snap);
      return;
    }

    CandNodeId CandId = forest().makeCandidate();
    {
      CandidateNode &Cand = forest().candidate(CandId);
      Cand.Kind = CandidateKind::Impl;
      Cand.Impl = ImplIdx;
      Cand.Parent = NodeId;
    }
    forest().goal(NodeId).Candidates.push_back(CandId);

    EvalResult CandResult =
        evalImplSubgoals(CandId, Decl, Subst, SelfInst, ArgsInst, Depth);
    forest().candidate(CandId).Result = CandResult;
    Infcx.rollbackTo(Snap);
    Attempts.push_back({CandId, CandResult});
  };
  if (!SelfIsUnknown) {
    // The goal's self-type root is rigid here (SelfIsUnknown handled
    // above), so with the candidate index on, impls bucketed under any
    // other head key could only fail unifyTraitHead: skip them without
    // instantiating. implSlice merges the head bucket with the blanket
    // impls in declaration order, so the assembled tree is identical to
    // the unindexed walk's; without the index the slice is the trait's
    // full impl list.
    std::optional<ImplHeadKey> Head;
    if (Opts.EnableCandidateIndex)
      Head = Program::headKeyOf(arena(), Infcx.shallowResolve(Pred.Subject));
    const Program::ImplSlice &Slice = Prog.implSlice(Pred.Trait, Head);
    if (Opts.EnableCandidateIndex) {
      // With a prebuilt index installed the bucket was assembled before
      // solving started: the enumeration is a bucket hit, and no live
      // filtering happens. candidates_filtered counts only the lazy
      // path's scan-and-filter work (index disabled, or no index
      // installed — e.g. a budget stop degraded the coherence-time
      // build), which is why it reads ~0 on indexed workloads.
      if (Prog.hasSolverIndex())
        ++NumIndexBucketHits;
      else
        NumCandidatesFiltered +=
            Prog.implsOf(Pred.Trait).size() - Slice.Seq.size();
    }
    // The walked slice is a dependency of the recording frame even when
    // this evaluation is a quiet probe: its outcome shapes visible work.
    // (The level-1 slice stays the dependency unit under the exact
    // index too: any edit inside the head bucket can change level-2
    // membership, and positional impl references index the level-1
    // sequence.)
    if (Opts.Cache && Rec)
      noteImplSliceDep(Pred.Trait, Head, Slice);
    // Level 2 of the candidate index: when the goal's (deep-resolved)
    // self type is concrete, an impl whose fully-concrete self has a
    // different region-erased match key could only fail head
    // unification — skip it without freshSubst/substitute/unify. Impls
    // with generic or variable-bearing selves keep an invalid plan key
    // and are always attempted. Slices below the cost-model threshold
    // skip keying outright: attempting a couple of impls is cheaper
    // than the match-key walk that would prune them.
    TypeId GoalKey;
    if (Opts.EnableCandidateIndex && Opts.EnableExactIndex &&
        Slice.Seq.size() >= Opts.ExactIndexMinSlice)
      GoalKey = arena().matchKey(Pred.Subject);
    if (GoalKey.isValid()) {
      const std::vector<TypeId> &Plan = Prog.exactPlan(Slice);
      for (size_t I = 0; I != Slice.Seq.size(); ++I) {
        if (Plan[I].isValid() && Plan[I] != GoalKey) {
          ++NumExactPrunes;
          continue;
        }
        TryImpl(Slice.Seq[I]);
      }
    } else {
      for (ImplId ImplIdx : Slice.Seq)
        TryImpl(ImplIdx);
    }
  }

  // Builtin candidate: fn items and fn pointers implement #[fn_trait]
  // traits whose single argument mirrors their signature.
  const TraitDecl *Trait = Prog.findTrait(Pred.Trait);
  // The declaration read (fn-trait flag; absence too) is a dependency.
  if (Opts.Cache && Rec)
    noteTraitDep(Pred.Trait);
  if (Trait && Trait->IsFnTrait) {
    TypeId Subject = Infcx.shallowResolve(Pred.Subject);
    const Type &SubjectNode = arena().get(Subject);
    if (SubjectNode.Kind == TypeKind::FnDef ||
        SubjectNode.Kind == TypeKind::FnPtr) {
      InferContext::Snapshot Snap = Infcx.snapshot();
      std::vector<TypeId> Params(SubjectNode.Args.begin(),
                                 SubjectNode.Args.end() - 1);
      TypeId Signature = arena().fnPtr(Params, SubjectNode.Args.back());
      bool Ok =
          Pred.Args.size() == 1 && Infcx.unify(Pred.Args[0], Signature);
      Infcx.rollbackTo(Snap);

      CandNodeId CandId = forest().makeCandidate();
      CandidateNode &Cand = forest().candidate(CandId);
      Cand.Kind = CandidateKind::Builtin;
      Cand.BuiltinName = S.name("fn-item");
      Cand.Result = Ok ? EvalResult::Yes : EvalResult::No;
      Cand.Parent = NodeId;
      forest().goal(NodeId).Candidates.push_back(CandId);
      Attempts.push_back({CandId, Cand.Result});
    }
  }

  // Selection: exactly one success commits; several is ambiguity (only
  // reachable when inference variables are present, since coherence rules
  // out overlapping impls for concrete goals).
  std::vector<const Attempt *> Successes;
  EvalResult Folded = EvalResult::No;
  for (const Attempt &A : Attempts) {
    Folded = disjoin(Folded, A.Result);
    if (A.Result == EvalResult::Yes)
      Successes.push_back(&A);
  }
  if (Successes.size() == 1) {
    const CandidateNode &Winner = forest().candidate(Successes[0]->Cand);
    applyWinner(Pred, Winner, Depth, Info);
    forest().goal(NodeId).SelectedCandidate = Successes[0]->Cand;
    return EvalResult::Yes;
  }
  if (Successes.size() > 1)
    return EvalResult::Maybe;
  return Folded;
}

EvalResult Solver::Impl::evalImplSubgoals(CandNodeId CandId,
                                          const ImplDecl &Decl,
                                          const ParamSubst &Subst,
                                          TypeId SelfInst,
                                          std::span<const TypeId> ArgsInst,
                                          uint32_t Depth) {
  EvalResult Result = EvalResult::Yes;
  // Duplicate obligations (e.g. an impl where-clause repeating an
  // associated-type bound) are registered once, as in rustc's fulfillment
  // context. A candidate attempt registers a handful of obligations at
  // most, so a linear scan beats the hash map this used to allocate on
  // every attempt — this runs once per assembled candidate, squarely on
  // the uncached hot path.
  std::vector<Predicate> Registered;
  auto AddSubgoal = [&](const Predicate &P, Span Origin) {
    Predicate Resolved = Infcx.resolve(P);
    for (const Predicate &Seen : Registered)
      if (Seen == Resolved)
        return;
    Registered.push_back(std::move(Resolved));
    GoalNodeId Sub = evalGoal(P, Depth + 1, Origin, nullptr);
    forest().candidate(CandId).SubGoals.push_back(Sub);
    forest().goal(Sub).ParentCandidate = CandId;
    Result = conjoin(Result, forest().goal(Sub).Result);
  };

  // Internal noise the extractor must hide: the instantiated self type
  // must be well-formed.
  if (Opts.EmitWellFormedGoals)
    AddSubgoal(Predicate::wellFormed(SelfInst), Decl.Sp);

  // Supertrait / trait where-clauses, instantiated at this impl. (rustc
  // checks these at the impl definition; surfacing them as candidate
  // subgoals keeps the whole proof in one tree.)
  const TraitDecl *Trait = Prog.findTrait(Decl.Trait);
  if (Opts.Cache && Rec)
    noteTraitDep(Decl.Trait);
  if (Trait) {
    ParamSubst TraitSubst;
    TraitSubst.emplace(S.name("Self"), SelfInst);
    for (size_t I = 0;
         I != Trait->Params.size() && I != ArgsInst.size(); ++I)
      TraitSubst.emplace(Trait->Params[I], ArgsInst[I]);
    for (const Predicate &Where : Trait->WhereClauses)
      AddSubgoal(substPredicate(Where, TraitSubst), Trait->Sp);

    // Bounds on associated types, applied to this impl's bindings:
    // `type Data: AssocData<Self>` requires the bound of every impl that
    // binds Data.
    for (const auto &[AssocName, BoundTy] : Decl.Bindings) {
      const AssocTypeDecl *Assoc = Trait->findAssoc(AssocName);
      if (!Assoc)
        continue;
      TypeId Instantiated = arena().substitute(BoundTy, Subst);
      for (const Predicate &Bound : Assoc->Bounds) {
        Predicate Obligation = substPredicate(Bound, TraitSubst);
        // The bound's subject is the projection through Self; the impl
        // provides the concrete binding.
        Obligation.Subject = Instantiated;
        AddSubgoal(Obligation, Assoc->Sp);
      }
    }
  }

  // The impl's own where-clauses; `Self` denotes the instantiated self
  // type.
  ParamSubst ImplSubst = Subst;
  ImplSubst.emplace(S.name("Self"), SelfInst);
  for (const Predicate &Where : Decl.WhereClauses)
    AddSubgoal(substPredicate(Where, ImplSubst), Decl.Sp);

  return Result;
}

void Solver::Impl::applyWinner(const Predicate &Pred,
                               const CandidateNode &Winner, uint32_t Depth,
                               TraitEvalInfo *Info) {
  TraitEvalInfo Local;
  TraitEvalInfo &Out = Info ? *Info : Local;
  Out.HasWinner = true;
  Out.WinnerKind = Winner.Kind;

  switch (Winner.Kind) {
  case CandidateKind::ParamEnv: {
    bool Ok = unifyTraitHead(Pred, Winner.Assumption.Subject,
                             Winner.Assumption.Args);
    assert(Ok && "winner stopped matching during commit");
    (void)Ok;
    return;
  }
  case CandidateKind::Builtin: {
    TypeId Subject = Infcx.shallowResolve(Pred.Subject);
    const Type &SubjectNode = arena().get(Subject);
    assert((SubjectNode.Kind == TypeKind::FnDef ||
            SubjectNode.Kind == TypeKind::FnPtr) &&
           "builtin winner must be a function type");
    std::vector<TypeId> Params(SubjectNode.Args.begin(),
                               SubjectNode.Args.end() - 1);
    TypeId Signature = arena().fnPtr(Params, SubjectNode.Args.back());
    bool Ok = Infcx.unify(Pred.Args[0], Signature);
    assert(Ok && "builtin winner stopped matching during commit");
    (void)Ok;
    return;
  }
  case CandidateKind::Impl: {
    const ImplDecl &Decl = Prog.impl(Winner.Impl);
    ParamSubst Subst = freshSubst(Decl.Generics);
    TypeId SelfInst = arena().substitute(Decl.SelfTy, Subst);
    std::vector<TypeId> ArgsInst;
    for (TypeId Arg : Decl.TraitArgs)
      ArgsInst.push_back(arena().substitute(Arg, Subst));
    bool Ok = unifyTraitHead(Pred, SelfInst, ArgsInst);
    assert(Ok && "impl winner stopped matching during commit");
    (void)Ok;

    // Replay the subgoals quietly so their bindings commit too; the
    // recorded tree already shows this work.
    bool SavedQuiet = Quiet;
    Quiet = true;
    CandNodeId ScratchCand = Scratch.makeCandidate();
    evalImplSubgoals(ScratchCand, Decl, Subst, SelfInst, ArgsInst, Depth);
    Quiet = SavedQuiet;

    Out.WinnerImpl = Winner.Impl;
    Out.WinnerSubst = std::move(Subst);
    return;
  }
  }
}

EvalResult Solver::Impl::evalProjectionGoal(GoalNodeId NodeId,
                                            const Predicate &Pred,
                                            uint32_t Depth) {
  CandNodeId CandId = forest().makeCandidate();
  {
    CandidateNode &Cand = forest().candidate(CandId);
    Cand.Kind = CandidateKind::Builtin;
    Cand.BuiltinName = S.name("project");
    Cand.Parent = NodeId;
  }
  forest().goal(NodeId).Candidates.push_back(CandId);
  Span Origin = forest().goal(NodeId).Origin;

  TypeId OutVar = Infcx.freshVar();
  GoalNodeId NormGoal = evalGoal(Predicate::normalizesTo(Pred.Subject, OutVar),
                                 Depth + 1, Origin, nullptr);
  forest().candidate(CandId).SubGoals.push_back(NormGoal);
  forest().goal(NormGoal).ParentCandidate = CandId;

  EvalResult NormResult = forest().goal(NormGoal).Result;
  EvalResult Result;
  if (NormResult == EvalResult::Yes) {
    InferContext::Snapshot Snap = Infcx.snapshot();
    if (Infcx.unify(OutVar, Pred.Rhs)) {
      Result = EvalResult::Yes; // Keep the bindings.
    } else {
      Infcx.rollbackTo(Snap);
      Result = EvalResult::No;
    }
  } else {
    Result = NormResult;
  }
  forest().candidate(CandId).Result = Result;
  return Result;
}

EvalResult Solver::Impl::evalNormalizesTo(GoalNodeId NodeId,
                                          const Predicate &Pred,
                                          uint32_t Depth) {
  Span Origin = forest().goal(NodeId).Origin;
  TypeId Subject = Infcx.shallowResolve(Pred.Subject);
  const Type &SubjectNode = arena().get(Subject);

  CandNodeId CandId = forest().makeCandidate();
  {
    CandidateNode &Cand = forest().candidate(CandId);
    Cand.Kind = CandidateKind::Builtin;
    Cand.BuiltinName = S.name("normalize");
    Cand.Parent = NodeId;
  }
  forest().goal(NodeId).Candidates.push_back(CandId);

  auto Finish = [&](EvalResult Result, TypeId Value) {
    if (Result == EvalResult::Yes) {
      bool Ok = Infcx.unify(Pred.Rhs, Value);
      assert(Ok && "normalization output variable must be fresh");
      (void)Ok;
      forest().goal(NodeId).NormalizedValue = Infcx.resolve(Value);
    }
    forest().candidate(CandId).Result = Result;
    return Result;
  };

  if (SubjectNode.Kind != TypeKind::Projection) {
    // Already concrete (an earlier round may have resolved it).
    return Finish(EvalResult::Yes, Subject);
  }

  // Resolve the trait goal behind the projection.
  TypeId SelfTy = SubjectNode.Args[0];
  std::vector<TypeId> TraitArgs(SubjectNode.Args.begin() + 1,
                                SubjectNode.Args.end());
  TraitEvalInfo Info;
  GoalNodeId TraitGoal =
      evalGoal(Predicate::traitBound(SelfTy, SubjectNode.TraitName, TraitArgs),
               Depth + 1, Origin, &Info);
  forest().candidate(CandId).SubGoals.push_back(TraitGoal);
  forest().goal(TraitGoal).ParentCandidate = CandId;

  EvalResult TraitResult = forest().goal(TraitGoal).Result;
  if (TraitResult != EvalResult::Yes)
    return Finish(TraitResult, TypeId::invalid());

  assert(Info.HasWinner && "successful trait goal must select a candidate");
  switch (Info.WinnerKind) {
  case CandidateKind::Impl: {
    const ImplDecl &Decl = Prog.impl(Info.WinnerImpl);
    std::optional<TypeId> Binding = Decl.findBinding(SubjectNode.Name);
    if (!Binding) {
      // The selected impl does not bind this associated type: in real
      // Rust this is rejected at the impl; here it surfaces as a failed
      // normalization.
      return Finish(EvalResult::No, TypeId::invalid());
    }
    TypeId Value =
        Infcx.resolve(arena().substitute(*Binding, Info.WinnerSubst));
    EvalResult Blame = EvalResult::Yes;
    Value = deepNormalize(Value, CandId, Depth, Origin, Blame);
    if (Blame != EvalResult::Yes)
      return Finish(Blame, TypeId::invalid());
    return Finish(EvalResult::Yes, Value);
  }
  case CandidateKind::Builtin: {
    // fn-trait: `Output` normalizes to the function's return type.
    if (S.text(SubjectNode.Name) == "Output") {
      TypeId FnTy = Infcx.shallowResolve(SelfTy);
      const Type &FnNode = arena().get(FnTy);
      if (FnNode.Kind == TypeKind::FnDef || FnNode.Kind == TypeKind::FnPtr)
        return Finish(EvalResult::Yes, FnNode.Args.back());
    }
    return Finish(EvalResult::No, TypeId::invalid());
  }
  case CandidateKind::ParamEnv:
    // An assumption proves the trait bound but provides no binding: the
    // projection stays rigid.
    return Finish(EvalResult::Yes, Subject);
  }
  return Finish(EvalResult::No, TypeId::invalid());
}

TypeId Solver::Impl::deepNormalize(TypeId T, CandNodeId CandId,
                                   uint32_t Depth, Span Origin,
                                   EvalResult &Blame) {
  T = Infcx.resolve(T);
  const Type &Node = arena().get(T);
  if (Node.Kind == TypeKind::Projection) {
    TypeId OutVar = Infcx.freshVar();
    GoalNodeId NormGoal =
        evalGoal(Predicate::normalizesTo(T, OutVar), Depth + 1, Origin,
                 nullptr);
    forest().candidate(CandId).SubGoals.push_back(NormGoal);
    forest().goal(NormGoal).ParentCandidate = CandId;
    EvalResult Result = forest().goal(NormGoal).Result;
    if (Result != EvalResult::Yes) {
      Blame = conjoin(Blame, Result);
      return T;
    }
    // The nested evaluation already normalized its own output; do not
    // recurse into it again (a rigid result would loop forever).
    return Infcx.resolve(OutVar);
  }
  if (Node.Args.empty())
    return T;
  bool Changed = false;
  std::vector<TypeId> NewArgs;
  NewArgs.reserve(Node.Args.size());
  for (TypeId Arg : Node.Args) {
    TypeId NewArg = deepNormalize(Arg, CandId, Depth, Origin, Blame);
    Changed |= NewArg != Arg;
    NewArgs.push_back(NewArg);
  }
  if (!Changed)
    return T;
  Type Copy = Node;
  Copy.Args = std::move(NewArgs);
  return arena().intern(std::move(Copy));
}

bool Solver::Impl::regionOutlives(Region Sub, Region Sup) {
  if (Sub.Kind == RegionKind::Static)
    return true;
  if (Sup.Kind == RegionKind::Erased)
    return true;
  return Sub == Sup;
}

bool Solver::Impl::regionsOutlive(TypeId Ty, Region Bound) {
  std::vector<Region> Regions;
  arena().collectRegions(Ty, Regions);
  for (Region R : Regions)
    if (!regionOutlives(R, Bound))
      return false;
  return true;
}

EvalResult Solver::Impl::evalOutlivesGoal(GoalNodeId NodeId,
                                          const Predicate &Pred) {
  CandNodeId CandId = forest().makeCandidate();
  CandidateNode &Cand = forest().candidate(CandId);
  Cand.Kind = CandidateKind::Builtin;
  Cand.BuiltinName = S.name("outlives");
  Cand.Parent = NodeId;
  forest().goal(NodeId).Candidates.push_back(CandId);

  if (Infcx.countUnresolved(Pred.Subject) != 0) {
    Cand.Result = EvalResult::Maybe;
    return EvalResult::Maybe;
  }
  Cand.Result = regionsOutlive(Pred.Subject, Pred.Rgn) ? EvalResult::Yes
                                                       : EvalResult::No;
  return Cand.Result;
}

EvalResult Solver::Impl::evalRegionOutlives(GoalNodeId NodeId,
                                            const Predicate &Pred) {
  CandNodeId CandId = forest().makeCandidate();
  CandidateNode &Cand = forest().candidate(CandId);
  Cand.Kind = CandidateKind::Builtin;
  Cand.BuiltinName = S.name("region-outlives");
  Cand.Parent = NodeId;
  forest().goal(NodeId).Candidates.push_back(CandId);
  Cand.Result = regionOutlives(Pred.SubRegion, Pred.Rgn) ? EvalResult::Yes
                                                         : EvalResult::No;
  return Cand.Result;
}

EvalResult Solver::Impl::evalSizedGoal(GoalNodeId NodeId,
                                       const Predicate &Pred) {
  CandNodeId CandId = forest().makeCandidate();
  CandidateNode &Cand = forest().candidate(CandId);
  Cand.Kind = CandidateKind::Builtin;
  Cand.BuiltinName = S.name("sized");
  Cand.Parent = NodeId;
  forest().goal(NodeId).Candidates.push_back(CandId);

  TypeId Subject = Infcx.shallowResolve(Pred.Subject);
  const Type &Node = arena().get(Subject);
  // Every type in our model is Sized except an unconstrained inference
  // variable, which is not yet known to be.
  Cand.Result =
      Node.Kind == TypeKind::Infer ? EvalResult::Maybe : EvalResult::Yes;
  return Cand.Result;
}

EvalResult Solver::Impl::evalWellFormedGoal(GoalNodeId NodeId,
                                            const Predicate &Pred) {
  CandNodeId CandId = forest().makeCandidate();
  CandidateNode &Cand = forest().candidate(CandId);
  Cand.Kind = CandidateKind::Builtin;
  Cand.BuiltinName = S.name("well-formed");
  Cand.Parent = NodeId;
  forest().goal(NodeId).Candidates.push_back(CandId);
  // Structural well-formedness holds for every type the parser can build;
  // the obligation exists to exercise internal-predicate filtering.
  (void)Pred;
  Cand.Result = EvalResult::Yes;
  return EvalResult::Yes;
}

void Solver::Impl::spliceEntry(const GoalCache::Entry &E, GoalNodeId NodeId,
                               uint32_t Depth, TraitEvalInfo *Info,
                               const DepCheck &DC) {
  ProofForest &F = forest();
  uint32_t VarBase = Infcx.numVars();
  CacheDecoder Dec(arena(), VarBase, &*CacheSyms);

  // Positional impl reference -> this program's ImplId, through the
  // slice the dependency check just matched. Byte-identical sequences of
  // impl fingerprints guarantee the impl at the same position is
  // structurally the one the recorder used.
  auto MapImpl = [&](uint32_t Unit, uint32_t Pos) {
    assert(Unit < DC.Slices.size() && DC.Slices[Unit] &&
           Pos < DC.Slices[Unit]->Seq.size() &&
           "positional impl reference outside the checked slice");
    return DC.Slices[Unit]->Seq[Pos];
  };

  // Replay variable allocation and the committed bindings in trail
  // order: the consumer ends up with exactly the binding state and trail
  // length the uncached evaluation would have produced.
  for (uint32_t I = 0; I != E.NumFreshVars; ++I)
    (void)Infcx.freshVar();
  for (const GoalCache::BindRec &B : E.Binds) {
    size_t Pos = 0;
    Infcx.bindRaw(Dec.varIndex(B.Var), Dec.type(B.Value, Pos));
  }

  // The root node already exists (NodeId); materialize the rest of the
  // subtree. Goal and candidate ids are separate sequences, so bulk
  // allocation lands on the same ids interleaved creation would.
  size_t GoalBase = F.numGoals();
  size_t CandBase = F.numCandidates();
  for (size_t I = 1; I < E.Goals.size(); ++I)
    (void)F.makeGoal();
  for (size_t J = 0; J != E.Cands.size(); ++J)
    (void)F.makeCandidate();

  auto MapGoal = [&](uint32_t Rel) {
    return Rel == 0
               ? NodeId
               : GoalNodeId(static_cast<uint32_t>(GoalBase + Rel - 1));
  };
  auto MapCand = [&](uint32_t Rel) {
    return CandNodeId(static_cast<uint32_t>(CandBase + Rel));
  };

  for (size_t I = 0; I != E.Goals.size(); ++I) {
    const GoalCache::GoalRec &R = E.Goals[I];
    GoalNode &G = F.goal(MapGoal(static_cast<uint32_t>(I)));
    size_t Pos = 0;
    G.Pred = Dec.pred(R.Pred, Pos);
    G.Result = R.Result;
    G.Depth = Depth + R.RelDepth;
    // The root's Origin is the consumer's call site (a where-clause span,
    // a top-level goal span, ...) and was already set by makeGoal; the
    // recorded one belongs to whichever site recorded the entry.
    if (I != 0)
      G.Origin = R.Origin;
    // The root's ParentCandidate (and GoalIndex/SnapshotRound) belong to
    // the consumer's context; the caller fills them as usual.
    if (I != 0 && R.ParentCandidate != GoalCache::NoId)
      G.ParentCandidate = MapCand(R.ParentCandidate);
    G.Candidates.reserve(R.Candidates.size());
    for (uint32_t C : R.Candidates)
      G.Candidates.push_back(MapCand(C));
    if (R.SelectedCandidate != GoalCache::NoId)
      G.SelectedCandidate = MapCand(R.SelectedCandidate);
    if (!R.NormalizedValue.empty()) {
      Pos = 0;
      G.NormalizedValue = Dec.type(R.NormalizedValue, Pos);
    }
    G.FromCache = R.FromCache;
  }
  for (size_t J = 0; J != E.Cands.size(); ++J) {
    const GoalCache::CandRec &R = E.Cands[J];
    CandidateNode &C = F.candidate(MapCand(static_cast<uint32_t>(J)));
    C.Kind = R.Kind;
    if (R.Kind == CandidateKind::Impl && R.ImplUnit != GoalCache::NoId)
      C.Impl = MapImpl(R.ImplUnit, R.ImplPos);
    C.BuiltinName = CacheSyms->symbol(R.BuiltinName);
    if (R.HasAssumption) {
      size_t Pos = 0;
      C.Assumption = Dec.pred(R.Assumption, Pos);
    }
    C.Result = R.Result;
    C.Parent = MapGoal(R.Parent);
    C.SubGoals.reserve(R.SubGoals.size());
    for (uint32_t Sub : R.SubGoals)
      C.SubGoals.push_back(MapGoal(Sub));
  }

  // The hit itself was already counted as one evaluation (and one budget
  // tick) at the top of evalGoal; charge the budget for the skipped
  // evaluations too, so governed cached and uncached runs consume the
  // same work and stop at the same goal. cacheAdmissible already refused
  // hits the work ceiling cannot absorb, so only a deadline poll or a
  // sticky cancel can trip here.
  NumEvaluations += E.TotalEvals - 1;
  // Enumeration counters are recomputed consumer-side from the recorded
  // enumeration counts, under the *consumer's* configuration: with a
  // prebuilt index installed each enumeration is a bucket hit; without
  // one it is lazy scan-and-filter work (impls of the trait minus the
  // slice the dependency check just proved byte-identical). Warm and
  // cold runs of the same configuration therefore report exactly the
  // same values — no recorder-side total is replayed.
  if (Opts.EnableCandidateIndex) {
    bool Indexed = Prog.hasSolverIndex();
    for (size_t U = 0; U != E.Deps.size(); ++U) {
      uint32_t N =
          U < E.SliceEnumCounts.size() ? E.SliceEnumCounts[U] : 0;
      if (N == 0 || !DC.Slices[U])
        continue;
      if (Indexed) {
        NumIndexBucketHits += N;
        continue;
      }
      size_t All = Prog.implsOf(CacheSyms->peek(E.Deps[U].Trait)).size();
      NumCandidatesFiltered +=
          static_cast<uint64_t>(N) * (All - DC.Slices[U]->Seq.size());
    }
  }
  if (Opts.Budget && !BudgetStopped && E.TotalEvals > 1 &&
      Opts.Budget->tick(E.TotalEvals - 1))
    BudgetStopped = true;

  if (Info && E.HasWinner) {
    Info->HasWinner = true;
    Info->WinnerKind = E.WinnerKind;
    if (E.WinnerKind == CandidateKind::Impl &&
        E.WinnerImplUnit != GoalCache::NoId)
      Info->WinnerImpl = MapImpl(E.WinnerImplUnit, E.WinnerImplPos);
    Info->WinnerSubst.clear();
    for (const auto &[NameTok, ValueEnc] : E.WinnerSubst) {
      size_t Pos = 0;
      Info->WinnerSubst.emplace(CacheSyms->symbol(NameTok),
                                Dec.type(ValueEnc, Pos));
    }
  }
}

void Solver::Impl::finishRecording(EvalResult Result,
                                   const TraitEvalInfo *CallerInfo) {
  RecFrame Frame = std::move(*Rec);
  Rec.reset();
  // When evalGoal had no caller Info the winner was recorded into the
  // frame itself (EffInfo = &Rec->Winner); read the move target, never a
  // reference into the optional destroyed above.
  const TraitEvalInfo &Winner = CallerInfo ? *CallerInfo : Frame.Winner;

  ProofForest &F = *OutForest;
  size_t RootGoal = Frame.Root.value();
  size_t NumGoalsNow = F.numGoals();
  size_t NumCandsNow = F.numCandidates();
  size_t TrailNow = Infcx.trailLength();

  // Cacheability: ambiguous results depend on the unconverged fixpoint
  // state; Overflow anywhere in the subtree means a depth/cycle/budget
  // condition the consumer must rediscover itself; a budget stop or
  // evaluation-budget trip mid-frame truncated the recording; a binding
  // to a variable the subtree did not allocate leaks inference state.
  bool Reject = Opts.CacheRejectAll;
  if (Result != EvalResult::Yes && Result != EvalResult::No)
    Reject = true;
  if (BudgetStopped || EvalBudgetExhausted != Frame.ExhaustedBefore)
    Reject = true;
  for (size_t I = RootGoal; I != NumGoalsNow && !Reject; ++I)
    if (F.goal(GoalNodeId(static_cast<uint32_t>(I))).Result ==
        EvalResult::Overflow)
      Reject = true;
  for (size_t I = Frame.TrailBefore; I != TrailNow && !Reject; ++I)
    if (Infcx.trailVar(I) < Frame.VarsBefore)
      Reject = true;
  if (Reject) {
    ++NumCacheInsertsRejected;
    RejectedKeys.insert(Frame.Key.Hash);
    return;
  }

  auto Entry = std::make_shared<GoalCache::Entry>();
  Entry->TotalEvals = NumEvaluations - Frame.EvalsBefore;
  Entry->NumFreshVars = Infcx.numVars() - Frame.VarsBefore;
  Entry->Deps = std::move(Frame.Deps);
  Entry->SliceEnumCounts = std::move(Frame.EnumCounts);
  uint32_t RootDepth = F.goal(Frame.Root).Depth;

  CacheEncoder Enc(arena(), Frame.VarsBefore, nullptr, &*CacheSyms);
  auto RelCand = [&](CandNodeId Id) {
    if (!Id.isValid())
      return GoalCache::NoId;
    assert(Id.value() >= Frame.CandsBefore && "candidate outside the frame");
    return static_cast<uint32_t>(Id.value() - Frame.CandsBefore);
  };

  Entry->Goals.reserve(NumGoalsNow - RootGoal);
  for (size_t I = RootGoal; I != NumGoalsNow; ++I) {
    const GoalNode &G = F.goal(GoalNodeId(static_cast<uint32_t>(I)));
    GoalCache::GoalRec R;
    Enc.resetSawVar();
    Enc.pred(R.Pred, G.Pred);
    bool PredHasVar = Enc.sawVar();
    R.Result = G.Result;
    R.RelDepth = G.Depth - RootDepth;
    Entry->MaxRelDepth = std::max(Entry->MaxRelDepth, R.RelDepth);
    R.Origin = G.Origin;
    R.ParentCandidate = I == RootGoal ? GoalCache::NoId
                                      : RelCand(G.ParentCandidate);
    R.SelectedCandidate = RelCand(G.SelectedCandidate);
    R.Candidates.reserve(G.Candidates.size());
    for (CandNodeId C : G.Candidates)
      R.Candidates.push_back(RelCand(C));
    if (G.NormalizedValue.isValid())
      Enc.type(R.NormalizedValue, G.NormalizedValue);
    R.FromCache = G.FromCache;

    // Stack-conflict hashes. A goal pred containing a frame-internal
    // variable can never structurally equal a consumer ancestor (whose
    // variables all predate the splice base), so only variable-free
    // preds need to participate; NormalizesTo goals always carry their
    // fresh output variable and are compared by subject, matching
    // onStack.
    if (G.Pred.Kind == PredicateKind::NormalizesTo) {
      CacheEnc SubjectEnc;
      CacheEncoder Raw(arena(), CacheEncoder::RawVars, RawEncMemo,
                       &*CacheSyms);
      Raw.type(SubjectEnc, G.Pred.Subject);
      if (!Raw.sawVar())
        Entry->StackHashes.push_back(hashCacheEnc(SubjectEnc, NtStackSalt));
    } else if (!PredHasVar) {
      // With no variable tokens, the frame-relative encoding equals the
      // raw encoding the consumer hashes its ancestors with.
      Entry->StackHashes.push_back(hashCacheEnc(R.Pred, PredStackSalt));
    }
    Entry->Goals.push_back(std::move(R));
  }
  std::sort(Entry->StackHashes.begin(), Entry->StackHashes.end());
  Entry->StackHashes.erase(
      std::unique(Entry->StackHashes.begin(), Entry->StackHashes.end()),
      Entry->StackHashes.end());

  Entry->Cands.reserve(NumCandsNow - Frame.CandsBefore);
  for (size_t J = Frame.CandsBefore; J != NumCandsNow; ++J) {
    const CandidateNode &C = F.candidate(CandNodeId(static_cast<uint32_t>(J)));
    GoalCache::CandRec R;
    R.Kind = C.Kind;
    if (C.Kind == CandidateKind::Impl) {
      // Positional reference through the dependency units. Every impl
      // candidate came from a noted slice (or a spliced hit whose units
      // were merged in), so the map must know it; a miss would mean a
      // consultation escaped dependency tracking — refuse to cache.
      auto It = Frame.ImplRef.find(C.Impl.value());
      if (It == Frame.ImplRef.end()) {
        ++NumCacheInsertsRejected;
        RejectedKeys.insert(Frame.Key.Hash);
        return;
      }
      R.ImplUnit = It->second.first;
      R.ImplPos = It->second.second;
    }
    R.BuiltinName = CacheSyms->token(C.BuiltinName);
    if (C.Kind == CandidateKind::ParamEnv) {
      R.HasAssumption = true;
      Enc.pred(R.Assumption, C.Assumption);
    }
    R.Result = C.Result;
    R.Parent = static_cast<uint32_t>(C.Parent.value() - RootGoal);
    R.SubGoals.reserve(C.SubGoals.size());
    for (GoalNodeId Sub : C.SubGoals)
      R.SubGoals.push_back(static_cast<uint32_t>(Sub.value() - RootGoal));
    Entry->Cands.push_back(std::move(R));
  }

  Entry->Binds.reserve(TrailNow - Frame.TrailBefore);
  for (size_t I = Frame.TrailBefore; I != TrailNow; ++I) {
    uint32_t Index = Infcx.trailVar(I);
    GoalCache::BindRec B;
    B.Var = (static_cast<uint64_t>(Index - Frame.VarsBefore) << 1) | 1;
    Enc.type(B.Value, Infcx.binding(Index));
    Entry->Binds.push_back(std::move(B));
  }

  const Predicate &RootPred = F.goal(Frame.Root).Pred;
  if (RootPred.Kind == PredicateKind::Trait && Result == EvalResult::Yes &&
      Winner.HasWinner) {
    Entry->HasWinner = true;
    Entry->WinnerKind = Winner.WinnerKind;
    if (Winner.WinnerKind == CandidateKind::Impl) {
      auto It = Frame.ImplRef.find(Winner.WinnerImpl.value());
      if (It == Frame.ImplRef.end()) {
        ++NumCacheInsertsRejected;
        RejectedKeys.insert(Frame.Key.Hash);
        return;
      }
      Entry->WinnerImplUnit = It->second.first;
      Entry->WinnerImplPos = It->second.second;
    }
    Entry->WinnerSubst.reserve(Winner.WinnerSubst.size());
    for (const auto &[Name, Value] : Winner.WinnerSubst) {
      CacheEnc ValueEnc;
      Enc.type(ValueEnc, Value);
      Entry->WinnerSubst.emplace_back(CacheSyms->token(Name),
                                      std::move(ValueEnc));
    }
  }

  // Defer publication (see PendingInserts): the whole run must finish
  // without a budget stop before anything reaches the shared cache.
  PendingIndex.emplace(Frame.Key.Hash, PendingInserts.size());
  PendingInserts.emplace_back(std::move(Frame.Key), std::move(Entry));
}

void Solver::Impl::pendingLookup(
    const GoalCache::Key &K, std::vector<GoalCache::EntryPtr> &Out) const {
  auto [B, E] = PendingIndex.equal_range(K.Hash);
  for (auto It = B; It != E; ++It)
    if (PendingInserts[It->second].first == K)
      Out.push_back(PendingInserts[It->second].second);
}

void Solver::Impl::publishPending() {
  if (PendingInserts.empty())
    return;
  // One final poll: tick() observes a sticky cancel or deadline only
  // every 64 units, so a stop can trip between the last tick and the end
  // of the solve. The job is reported degraded at the stage boundary
  // either way; a stopped run publishes nothing.
  if (BudgetStopped || EvalBudgetExhausted ||
      (Opts.Budget && Opts.Budget->stopped())) {
    // A partial run publishes nothing, so a later healthy run can never
    // hit a subtree whose surroundings were cut short.
    NumCacheInsertsRejected += PendingInserts.size();
  } else {
    for (auto &[Key, Entry] : PendingInserts)
      if (Opts.Cache->insert(Key, std::move(Entry)))
        ++NumCacheInserts;
  }
  PendingInserts.clear();
  PendingIndex.clear();
}

// --- Public interface -----------------------------------------------------

Solver::Solver(const Program &Prog, SolverOptions Opts)
    : P(std::make_unique<Impl>(Prog, Opts)) {}

Solver::~Solver() = default;

InferContext &Solver::inferContext() { return P->Infcx; }

GoalNodeId Solver::solveOne(SolveOutcome &Out, const Predicate &Pred,
                            const std::vector<Predicate> &Env) {
  P->OutForest = &Out.Forest;
  // Rewind the Session's bump arena: nothing allocated by a previous
  // solve outlives it (attempt-scoped argument arrays only).
  P->S.scratch().beginSolve();
  P->setEnv(Env);
  GoalNodeId Root = P->evalGoal(Pred, 0, Span(), nullptr);
  Out.FinalRoots.push_back(Root);
  Out.FinalResults.push_back(Out.Forest.goal(Root).Result);
  Out.Snapshots.push_back({Root});
  Out.SpeculationGroups.push_back(UINT32_MAX);
  P->publishPending();
  Out.NumEvaluations = P->NumEvaluations;
  Out.NumMemoHits = P->NumMemoHits;
  Out.NumCandidatesFiltered = P->NumCandidatesFiltered;
  Out.NumIndexBucketHits = P->NumIndexBucketHits;
  Out.NumExactPrunes = P->NumExactPrunes;
  Out.NumCacheAdmissionSkips = P->NumCacheAdmissionSkips;
  Out.NumSolverSteps = P->NumSolverSteps;
  Out.NumCacheHits = P->NumCacheHits;
  Out.NumCacheMisses = P->NumCacheMisses;
  Out.NumCacheInserts = P->NumCacheInserts;
  Out.NumCacheInsertsRejected = P->NumCacheInsertsRejected;
  Out.NumCacheCrossRevHits = P->NumCacheCrossRevHits;
  Out.NumCacheDiskHits = P->NumCacheDiskHits;
  Out.NumCacheDepMisses = P->NumCacheDepMisses;
  Out.Interrupted = P->BudgetStopped;
  Out.EvalBudgetExhausted = P->EvalBudgetExhausted;
  return Root;
}

SolveOutcome Solver::solve() {
  SolveOutcome Out;
  P->OutForest = &Out.Forest;
  P->S.scratch().beginSolve();

  const std::vector<GoalDecl> &Goals = P->Prog.goals();
  size_t NumGoals = Goals.size();
  Out.Snapshots.resize(NumGoals);
  Out.FinalRoots.resize(NumGoals);
  Out.FinalResults.assign(NumGoals, EvalResult::Maybe);

  // Assign speculation groups: maximal runs of consecutive #[speculative]
  // goals model one method-probe site.
  Out.SpeculationGroups.assign(NumGoals, UINT32_MAX);
  uint32_t NextGroup = 0;
  for (size_t I = 0; I != NumGoals;) {
    if (!Goals[I].Speculative) {
      ++I;
      continue;
    }
    size_t J = I;
    while (J != NumGoals && Goals[J].Speculative)
      ++J;
    for (size_t K = I; K != J; ++K)
      Out.SpeculationGroups[K] = NextGroup;
    ++NextGroup;
    I = J;
  }

  // The obligation fixpoint: evaluate every goal; goals that come back
  // Maybe are retried in later rounds, by which time other goals may have
  // constrained shared inference variables. Each retry produces a fresh
  // snapshot root, mirroring rustc's requeued predicates (Section 4).
  for (uint32_t Round = 0; Round != P->Opts.MaxFixpointRounds; ++Round) {
    Out.RoundsUsed = Round + 1;
    bool AnyAmbiguous = false;
    bool Progress = false;
    for (size_t I = 0; I != NumGoals; ++I) {
      if (Round > 0 && Out.FinalResults[I] != EvalResult::Maybe)
        continue;
      size_t TrailBefore = P->Infcx.trailLength();
      P->setEnv(Goals[I].Env);
      GoalNodeId Root =
          P->evalGoal(Goals[I].Pred, 0, Goals[I].Sp, nullptr);
      {
        GoalNode &Node = Out.Forest.goal(Root);
        Node.GoalIndex = static_cast<uint32_t>(I);
        Node.SnapshotRound = Round;
      }
      EvalResult Result = Out.Forest.goal(Root).Result;
      if (Result != Out.FinalResults[I])
        Progress = true;
      if (P->Infcx.trailLength() != TrailBefore)
        Progress = true;
      Out.Snapshots[I].push_back(Root);
      Out.FinalRoots[I] = Root;
      Out.FinalResults[I] = Result;
      if (Result == EvalResult::Maybe)
        AnyAmbiguous = true;
      if (P->BudgetStopped)
        break; // Keep the partial snapshot; unreached goals stay empty.
    }
    if (P->BudgetStopped || !AnyAmbiguous || !Progress)
      break;
  }
  P->publishPending();

  Out.NumEvaluations = P->NumEvaluations;
  Out.NumMemoHits = P->NumMemoHits;
  Out.NumCandidatesFiltered = P->NumCandidatesFiltered;
  Out.NumIndexBucketHits = P->NumIndexBucketHits;
  Out.NumExactPrunes = P->NumExactPrunes;
  Out.NumCacheAdmissionSkips = P->NumCacheAdmissionSkips;
  Out.NumSolverSteps = P->NumSolverSteps;
  Out.NumCacheHits = P->NumCacheHits;
  Out.NumCacheMisses = P->NumCacheMisses;
  Out.NumCacheInserts = P->NumCacheInserts;
  Out.NumCacheInsertsRejected = P->NumCacheInsertsRejected;
  Out.NumCacheCrossRevHits = P->NumCacheCrossRevHits;
  Out.NumCacheDiskHits = P->NumCacheDiskHits;
  Out.NumCacheDepMisses = P->NumCacheDepMisses;
  Out.Interrupted = P->BudgetStopped;
  Out.EvalBudgetExhausted = P->EvalBudgetExhausted;
  return Out;
}

bool SolveOutcome::hasErrors() const {
  for (EvalResult Result : FinalResults)
    if (Result != EvalResult::Yes)
      return true;
  return false;
}
