//===- solver/Solver.h - The trait solver ---------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluates L_TRAIT predicates against a Program, producing the AND/OR
/// proof forest of Figure 5. Mirrors the shape of rustc's trait solver in
/// the respects the paper's pipeline depends on:
///
///  - candidate assembly from impls, parameter environments, and builtins
///    (fn items / fn pointers against `#[fn_trait]` traits);
///  - yes/maybe/no results, with `maybe` for goals blocked on unresolved
///    inference variables;
///  - a fixpoint obligation loop that re-evaluates ambiguous goals as
///    other goals constrain shared inference variables, producing one
///    snapshot per round (the extraction layer deduplicates them);
///  - recursion overflow via both a depth limit and ancestor-cycle
///    detection (rustc's E0275);
///  - stateful projection normalization (NormalizesTo nodes whose output
///    value is captured after their subtree executes);
///  - internal obligations (WellFormed, Sized) that are real work for the
///    solver but hidden from developers by the extraction layer.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_SOLVER_SOLVER_H
#define ARGUS_SOLVER_SOLVER_H

#include "solver/GoalCache.h"
#include "solver/InferContext.h"
#include "solver/ProofTree.h"
#include "support/Governance.h"
#include "tlang/Program.h"

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

namespace argus {

struct SolverOptions {
  /// Maximum goal nesting before declaring overflow (rustc's default
  /// recursion_limit is 128; ours is lower because corpus trees are
  /// shallower).
  uint32_t MaxDepth = 64;

  /// Maximum obligation fixpoint rounds before remaining ambiguities are
  /// treated as failures.
  uint32_t MaxFixpointRounds = 8;

  /// Global budget on goal evaluations per solve; exceeding it makes the
  /// remaining goals overflow. Guards against exponential candidate
  /// search in adversarial programs (rustc has analogous limits).
  uint64_t MaxGoalEvaluations = 2'000'000;

  /// Cache fully-resolved goal results. Off by default so recorded trees
  /// are complete; the solver throughput ablation turns it on.
  bool EnableMemoization = false;

  /// Emit WellFormed obligations for instantiated impl headers. These are
  /// the "internal predicates" noise that the extraction layer filters;
  /// the filtering ablation turns them off at the source.
  bool EmitWellFormedGoals = true;

  /// Consult the Program's per-trait head-constructor index to skip impls
  /// that cannot unify with a goal's self type, before paying for
  /// freshSubst/substitute/unify. Tree-identical by construction (a head
  /// mismatch leaves no trace in the proof forest); off for ablations and
  /// the identity tests.
  bool EnableCandidateIndex = true;

  /// The second level of the candidate index: within a head bucket, skip
  /// impls whose fully-concrete self type cannot equal a concrete goal
  /// self type (region-erased match-key comparison; see
  /// Program::exactPlan). Tree-identical for the same reason the head
  /// index is — a skipped impl could only have failed head unification,
  /// which leaves no trace. Only consulted when EnableCandidateIndex is
  /// also set; off for ablations and the identity tests.
  bool EnableExactIndex = true;

  /// Cost-model gate on the exact index: level-1 slices smaller than
  /// this skip match-key computation entirely and just attempt the
  /// impls. Keying a goal costs a region-erasing interner walk; with a
  /// handful of impls the head-unification failures it would avoid are
  /// cheaper than the key, so small queries must not pay it. Measured
  /// crossover on the evaluation corpus sits between 2 and 4 impls.
  size_t ExactIndexMinSlice = 4;

  /// Run the coherence-time impl-subsumption pass when the prebuilt
  /// index is built (inprocessing; see solver/Index.h): impls no
  /// reachable goal shape can ever assemble are pruned from the index
  /// buckets before solving starts. Tree-identical by construction —
  /// pruned impls could never leave a trace in the forest. The Solver
  /// itself only folds this flag into cache keys; the decision applies
  /// where the index is built (engine::Session::coherence). `--no-subsume`
  /// is the CLI escape hatch.
  bool EnableSubsumption = true;

  /// Cooperative execution budget, polled once per goal evaluation.
  /// When it stops, in-flight goals report Overflow and the fixpoint
  /// loop exits with whatever snapshots exist (SolveOutcome::Interrupted
  /// is set). Null means ungoverned. Not owned; must outlive the solver.
  ExecutionBudget *Budget = nullptr;

  /// Goal-result cache consulted after the overflow/cycle checks; hits
  /// splice the recorded subtree into the forest and replay its
  /// bindings, keeping output byte-identical to an uncached run. Null
  /// means disabled. Not owned; may be shared across concurrent solvers
  /// (the cache is internally synchronized). Ignored when
  /// EnableMemoization is set — the legacy memo changes tree shape, and
  /// layering the splicing cache on top would diverge from it.
  GoalCache *Cache = nullptr;

  /// Fault-injection hook: record subtrees normally but reject every
  /// insert (bumping the rejected counter). Output must stay identical.
  bool CacheRejectAll = false;

  /// Fault-injection hook (cache.depmiss): every dependency check fails,
  /// so each lookup with resident variants degrades to a counted
  /// dependency miss and a cold re-solve. Output must stay identical.
  bool CacheForceDepMiss = false;
};

/// Everything produced by solving one program.
struct SolveOutcome {
  ProofForest Forest;

  /// One root node per (program goal, fixpoint round) evaluation, in
  /// round order. Later snapshots supersede earlier ones.
  std::vector<std::vector<GoalNodeId>> Snapshots;

  /// The last snapshot of each program goal.
  std::vector<GoalNodeId> FinalRoots;

  /// Final result per program goal. A residual Maybe means inference
  /// finished without resolving the goal; Rust reports those as errors
  /// too (ambiguity), and the extractor treats them as failures.
  std::vector<EvalResult> FinalResults;

  /// Speculation group per goal (see GoalDecl::Speculative); goals not in
  /// any probe group hold UINT32_MAX.
  std::vector<uint32_t> SpeculationGroups;

  // Statistics.
  uint64_t NumEvaluations = 0;
  uint64_t NumMemoHits = 0;
  /// Impl candidates skipped by the *lazy* head-constructor index path
  /// without being instantiated. Counts live scan-and-filter work only:
  /// with a prebuilt index installed (Program::hasSolverIndex) goals walk
  /// preassembled buckets and this stays ~0 — NumIndexBucketHits counts
  /// those enumerations instead.
  uint64_t NumCandidatesFiltered = 0;
  /// Trait-goal enumerations served from a prebuilt index bucket
  /// (coherence-time index; see solver/Index.h). Warm cache splices
  /// replay the recorded enumeration counts so cached and uncached runs
  /// of the same configuration report the same value.
  uint64_t NumIndexBucketHits = 0;
  /// Impl candidates inside a matching head bucket skipped by the exact
  /// self-type level of the index (concrete impl self vs concrete goal
  /// self, region-erased). Counts live enumeration work only: a cache
  /// splice performs no enumeration and so contributes nothing.
  uint64_t NumExactPrunes = 0;
  /// Goals for which the cache admission pre-check skipped keying
  /// outright: trivially-cheap builtin kinds (Sized, WellFormed,
  /// Outlives, RegionOutlives — single-candidate leaves cheaper to
  /// re-solve than to key), goals containing inference variables, and
  /// re-recording attempts for keys whose recording this run already
  /// rejected (overflow/ambiguous trees).
  uint64_t NumCacheAdmissionSkips = 0;
  uint32_t RoundsUsed = 0;

  /// Goal evaluations that actually ran candidate assembly (as opposed
  /// to terminating early on overflow/cycle or being answered by a cache
  /// splice). Cache-on runs must show strictly fewer steps than
  /// cache-off runs on repetitive workloads.
  uint64_t NumSolverSteps = 0;
  uint64_t NumCacheHits = 0;
  uint64_t NumCacheMisses = 0;
  uint64_t NumCacheInserts = 0;
  /// Completed recordings rejected by the cacheability predicate
  /// (ambiguous result, overflow in the subtree, budget stop mid-frame,
  /// external binding, or injected cache.reject fault).
  uint64_t NumCacheInsertsRejected = 0;
  /// Cache hits served by an entry that was already resident when this
  /// solve began — i.e. recorded by a previous revision, batch job, or
  /// run sharing the cache. Subset of NumCacheHits.
  uint64_t NumCacheCrossRevHits = 0;
  /// Cache hits served by an entry materialized from a persisted image
  /// (Entry::FromDisk) rather than recorded by any live solve sharing
  /// the cache. Subset of NumCacheCrossRevHits.
  uint64_t NumCacheDiskHits = 0;
  /// Lookups that found at least one entry variant for their key but
  /// rejected every variant on the dependency-fingerprint check (the
  /// program edited an impl/trait the recorded subtree consulted).
  uint64_t NumCacheDepMisses = 0;

  /// True if SolverOptions::Budget stopped the solve mid-flight; goals
  /// not reached have empty Snapshots and a Maybe final result.
  bool Interrupted = false;

  /// True if MaxGoalEvaluations was exceeded (rustc-style overflow, as
  /// opposed to an external budget stop).
  bool EvalBudgetExhausted = false;

  /// True if any goal ultimately failed (No/Overflow or residual Maybe).
  bool hasErrors() const;
};

class Solver {
public:
  explicit Solver(const Program &Prog, SolverOptions Opts = SolverOptions());
  ~Solver();

  Solver(const Solver &) = delete;
  Solver &operator=(const Solver &) = delete;

  /// Runs every goal of the program through the fixpoint obligation loop.
  SolveOutcome solve();

  /// Evaluates one predicate under \p Env into the given outcome's forest
  /// (exposed for tests and for embedding). Returns the root node.
  GoalNodeId solveOne(SolveOutcome &Out, const Predicate &Pred,
                      const std::vector<Predicate> &Env);

  /// The inference context used by the last/current solve (bindings
  /// persist so callers can resolve displayed types).
  InferContext &inferContext();

private:
  struct Impl;
  std::unique_ptr<Impl> P;
};

} // namespace argus

#endif // ARGUS_SOLVER_SOLVER_H
