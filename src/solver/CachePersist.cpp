//===- solver/CachePersist.cpp --------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/CachePersist.h"

#include "support/FaultInjector.h"

#include <cstdio>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

using namespace argus;

namespace {

// "argusGC1" as little-endian bytes; `xxd` on a valid image shows the
// name, and no text file starts with it by accident.
constexpr uint64_t Magic = 0x3143477573677261ull;

// Word indices inside the 10-word header.
constexpr size_t HdrMagic = 0;
constexpr size_t HdrVersion = 1;
constexpr size_t HdrFlags = 2;
constexpr size_t HdrSymCount = 3;
constexpr size_t HdrSymWords = 4;
constexpr size_t HdrEntryCount = 5;
constexpr size_t HdrEntryWords = 6;
constexpr size_t HdrSymCksum = 7;
constexpr size_t HdrEntryCksum = 8;
constexpr size_t HdrCksum = 9;
constexpr size_t HeaderWords = 10;

// Enum cardinalities the validator checks decoded values against. The
// solver's enums are append-only in practice, but any change here is a
// format change and must bump CacheImageVersion regardless.
constexpr uint64_t NumTypeKinds = 10;   // Unit..Error (Type.h)
constexpr uint64_t NumPredKinds = 7;    // Trait..NormalizesTo
constexpr uint64_t NumRegionKinds = 3;  // Static, Named, Erased
constexpr uint64_t NumEvalResults = 4;  // Yes, Maybe, No, Overflow
constexpr uint64_t NumCandKinds = 3;    // Impl, ParamEnv, Builtin

// Hard ceilings on per-entry resource claims. Generous (real entries
// stay orders of magnitude below), but they bound what a validated-yet-
// hostile image can make the splice path allocate or iterate.
constexpr uint64_t MaxFreshVars = 1u << 20;
constexpr uint64_t MaxRelDepthLimit = 1u << 20;
constexpr uint64_t MaxTotalEvals = 1ull << 40;

uint64_t fnv1a(const char *Data, size_t N) {
  uint64_t H = 14695981039346656037ull;
  for (size_t I = 0; I != N; ++I) {
    H ^= static_cast<unsigned char>(Data[I]);
    H *= 1099511628211ull;
  }
  return H;
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

struct ImageWriter {
  std::string Buf;

  void word(uint64_t V) {
    char Bytes[8];
    for (int I = 0; I != 8; ++I)
      Bytes[I] = static_cast<char>((V >> (8 * I)) & 0xFF);
    Buf.append(Bytes, 8);
  }

  void enc(const CacheEnc &E) {
    word(E.size());
    for (uint64_t Token : E)
      word(Token);
  }

  /// Byte-length-prefixed string, zero-padded to the word boundary.
  void text(std::string_view S) {
    word(S.size());
    Buf.append(S.data(), S.size());
    Buf.append((8 - S.size() % 8) % 8, '\0');
  }

  size_t words() const { return Buf.size() / 8; }
};

uint64_t spanFileToken(const Span &S) {
  return S.File.isValid() ? static_cast<uint64_t>(S.File.value()) + 1 : 0;
}

void writeSpan(ImageWriter &W, const Span &S) {
  W.word(spanFileToken(S));
  W.word(S.Begin);
  W.word(S.End);
}

void writeEntry(ImageWriter &W, const GoalCache::Key &K,
                const GoalCache::Entry &E) {
  W.word(K.FlagsFp);
  writeSpan(W, K.Origin);
  W.enc(K.Pred);
  W.word(K.Env ? 1 : 0);
  if (K.Env)
    W.enc(*K.Env);

  W.word(E.MaxRelDepth);
  W.word(E.TotalEvals);
  W.word(E.NumFreshVars);
  W.word(E.Deps.size());
  for (size_t I = 0; I != E.Deps.size(); ++I) {
    const GoalCache::DepUnit &U = E.Deps[I];
    W.word(static_cast<uint64_t>(U.K));
    W.word(U.Trait);
    W.word(U.HasHead ? 1 : 0);
    W.word(U.HeadKind);
    W.word(U.HeadName);
    W.word(U.HeadTraitName);
    W.word(U.HeadArity);
    W.word(U.HeadMutable);
    W.word(U.Fp);
    W.word(I < E.SliceEnumCounts.size() ? E.SliceEnumCounts[I] : 0);
  }
  W.word(E.StackHashes.size());
  for (uint64_t H : E.StackHashes)
    W.word(H);
  W.word(E.Goals.size());
  for (const GoalCache::GoalRec &G : E.Goals) {
    W.enc(G.Pred);
    W.word(static_cast<uint64_t>(G.Result));
    W.word(G.RelDepth);
    writeSpan(W, G.Origin);
    W.word(G.ParentCandidate);
    W.word(G.SelectedCandidate);
    W.word(G.Candidates.size());
    for (uint32_t C : G.Candidates)
      W.word(C);
    W.enc(G.NormalizedValue);
    W.word(G.FromCache ? 1 : 0);
  }
  W.word(E.Cands.size());
  for (const GoalCache::CandRec &C : E.Cands) {
    W.word(static_cast<uint64_t>(C.Kind));
    W.word(C.ImplUnit);
    W.word(C.ImplPos);
    W.word(C.BuiltinName);
    W.word(C.HasAssumption ? 1 : 0);
    if (C.HasAssumption)
      W.enc(C.Assumption);
    W.word(static_cast<uint64_t>(C.Result));
    W.word(C.Parent);
    W.word(C.SubGoals.size());
    for (uint32_t S : C.SubGoals)
      W.word(S);
  }
  W.word(E.Binds.size());
  for (const GoalCache::BindRec &B : E.Binds) {
    W.word(B.Var);
    W.enc(B.Value);
  }
  W.word(E.HasWinner ? 1 : 0);
  if (E.HasWinner) {
    W.word(static_cast<uint64_t>(E.WinnerKind));
    W.word(E.WinnerImplUnit);
    W.word(E.WinnerImplPos);
    W.word(E.WinnerSubst.size());
    for (const auto &[NameTok, ValueEnc] : E.WinnerSubst) {
      W.word(NameTok);
      W.enc(ValueEnc);
    }
  }
}

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

/// Bounds-checked little-endian word reader over one section. Every
/// read either succeeds or trips the sticky fail flag; callers check
/// once per record, the validator checks before using any value that
/// feeds an allocation or an index.
class ImageReader {
public:
  ImageReader(std::string_view Data) : Data(Data) {}

  bool failed() const { return Failed; }
  bool atEnd() const { return Pos == Data.size(); }
  size_t remainingWords() const { return (Data.size() - Pos) / 8; }

  uint64_t word() {
    if (Failed || Data.size() - Pos < 8) {
      Failed = true;
      return 0;
    }
    uint64_t V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(
               static_cast<unsigned char>(Data[Pos + I]))
           << (8 * I);
    Pos += 8;
    return V;
  }

  /// A word that must fit u32 (record-relative indices, counts that
  /// land in u32 fields).
  bool u32(uint32_t &Out) {
    uint64_t V = word();
    if (Failed || V > 0xFFFFFFFFull)
      return fail();
    Out = static_cast<uint32_t>(V);
    return true;
  }

  /// Length-prefixed token stream. The count is validated against the
  /// remaining bytes before the vector is sized, so a forged length
  /// cannot drive a huge allocation.
  bool enc(CacheEnc &Out) {
    uint64_t N = word();
    if (Failed || N > remainingWords())
      return fail();
    Out.clear();
    Out.reserve(static_cast<size_t>(N));
    for (uint64_t I = 0; I != N; ++I)
      Out.push_back(word());
    return !Failed;
  }

  /// Length-prefixed, padded string.
  bool text(std::string_view &Out) {
    uint64_t N = word();
    if (Failed || N > Data.size() - Pos)
      return fail();
    Out = Data.substr(Pos, static_cast<size_t>(N));
    size_t Padded = (static_cast<size_t>(N) + 7) / 8 * 8;
    if (Padded > Data.size() - Pos)
      return fail();
    Pos += Padded;
    return true;
  }

  bool fail() {
    Failed = true;
    return false;
  }

private:
  std::string_view Data;
  size_t Pos = 0;
  bool Failed = false;
};

//===----------------------------------------------------------------------===//
// Token-stream validation and symbol rewriting
//===----------------------------------------------------------------------===//

/// One pass over a CacheEnc following the encoder's grammar. With
/// \p Remap null it validates (every kind in range, every symbol id
/// inside the table, every variable token well-formed); with \p Remap
/// set it rewrites image symbol ids into the target registry's. The
/// same walk serves both so the rewrite can never touch a stream the
/// validation pass did not fully cover.
struct EncWalk {
  uint64_t NumSyms = 0;
  /// Intern-tagged variable tokens must re-base below this (the entry's
  /// NumFreshVars); 0 forbids intern tokens entirely (key streams are
  /// encoded raw).
  uint64_t MaxInternRel = 0;
  const std::vector<uint32_t> *Remap = nullptr;

  bool sym(CacheEnc &E, size_t &Pos) {
    if (Pos >= E.size())
      return false;
    uint64_t Tok = E[Pos];
    if (Tok != 0) {
      if (Tok - 1 >= NumSyms)
        return false;
      if (Remap)
        E[Pos] = static_cast<uint64_t>((*Remap)[Tok - 1]) + 1;
    }
    ++Pos;
    return true;
  }

  bool var(const CacheEnc &E, size_t &Pos) {
    if (Pos >= E.size())
      return false;
    uint64_t Tok = E[Pos++];
    uint64_t Index = Tok >> 1;
    if (Index > 0xFFFFFFFFull) // CacheDecoder::varIndex truncates to u32.
      return false;
    if ((Tok & 1) && Index >= MaxInternRel)
      return false;
    return true;
  }

  bool region(CacheEnc &E, size_t &Pos) {
    if (Pos >= E.size() || E[Pos] >= NumRegionKinds)
      return false;
    ++Pos;
    return sym(E, Pos);
  }

  bool type(CacheEnc &E, size_t &Pos) {
    if (Pos >= E.size())
      return false;
    uint64_t Tag = E[Pos++];
    if (Tag == 0)
      return true;
    if (Tag != 1)
      return false;
    if (Pos >= E.size() || E[Pos] >= NumTypeKinds)
      return false;
    uint64_t Kind = E[Pos++];
    if (Kind == static_cast<uint64_t>(TypeKind::Infer))
      return var(E, Pos);
    if (!sym(E, Pos) || !sym(E, Pos))
      return false;
    if (Pos >= E.size() || E[Pos] > 1) // Mutable flag.
      return false;
    ++Pos;
    if (!region(E, Pos))
      return false;
    if (Pos >= E.size())
      return false;
    uint64_t NumArgs = E[Pos++];
    if (NumArgs > E.size() - Pos) // Each argument takes >= 1 token.
      return false;
    for (uint64_t I = 0; I != NumArgs; ++I)
      if (!type(E, Pos))
        return false;
    return true;
  }

  bool pred(CacheEnc &E, size_t &Pos) {
    if (Pos >= E.size() || E[Pos] >= NumPredKinds)
      return false;
    ++Pos;
    if (!sym(E, Pos) || !type(E, Pos))
      return false;
    if (Pos >= E.size())
      return false;
    uint64_t NumArgs = E[Pos++];
    if (NumArgs > E.size() - Pos)
      return false;
    for (uint64_t I = 0; I != NumArgs; ++I)
      if (!type(E, Pos))
        return false;
    if (!type(E, Pos))
      return false;
    return region(E, Pos) && region(E, Pos);
  }

  /// Whole-stream forms: the stream must contain exactly one record.
  bool wholePred(CacheEnc &E) {
    size_t Pos = 0;
    return pred(E, Pos) && Pos == E.size();
  }
  bool wholeType(CacheEnc &E) {
    size_t Pos = 0;
    return type(E, Pos) && Pos == E.size();
  }
  /// Environments are concatenated predicate encodings (possibly none).
  bool wholeEnv(CacheEnc &E) {
    size_t Pos = 0;
    while (Pos != E.size())
      if (!pred(E, Pos))
        return false;
    return true;
  }
  /// A bare symbol token outside any stream (BuiltinName, dependency
  /// traits, winner substitution names).
  bool bareSym(uint64_t &Tok) {
    CacheEnc One{Tok};
    size_t Pos = 0;
    if (!sym(One, Pos))
      return false;
    Tok = One[0];
    return true;
  }
};

//===----------------------------------------------------------------------===//
// Entry parsing + structural validation
//===----------------------------------------------------------------------===//

struct StagedEntry {
  GoalCache::Key K;
  CacheEnc Env; ///< Flattened; HasEnv distinguishes empty from none.
  bool HasEnv = false;
  std::shared_ptr<GoalCache::Entry> E;
};

bool readSpan(ImageReader &R, Span &Out) {
  uint64_t FileTok = R.word();
  uint64_t Begin = R.word();
  uint64_t End = R.word();
  if (R.failed() || Begin > 0xFFFFFFFFull || End > 0xFFFFFFFFull)
    return false;
  if (FileTok > 0xFFFFFFFFull) // value()+1 for a valid u32 id, or 0.
    return false;
  Out.File = FileTok == 0 ? FileId()
                          : FileId(static_cast<uint32_t>(FileTok - 1));
  Out.Begin = static_cast<uint32_t>(Begin);
  Out.End = static_cast<uint32_t>(End);
  return true;
}

/// Reads one entry record. Purely structural (counts against remaining
/// bytes, scalars into their field ranges); the semantic checks that
/// need the whole record run in validateEntry afterwards.
bool readEntry(ImageReader &R, StagedEntry &S) {
  S.E = std::make_shared<GoalCache::Entry>();
  GoalCache::Entry &E = *S.E;

  S.K.FlagsFp = R.word();
  if (!readSpan(R, S.K.Origin))
    return false;
  if (!R.enc(S.K.Pred))
    return false;
  uint64_t HasEnv = R.word();
  if (R.failed() || HasEnv > 1)
    return false;
  S.HasEnv = HasEnv != 0;
  if (S.HasEnv && !R.enc(S.Env))
    return false;

  if (!R.u32(E.MaxRelDepth))
    return false;
  E.TotalEvals = R.word();
  if (!R.u32(E.NumFreshVars))
    return false;
  uint64_t NumDeps = R.word();
  if (R.failed() || NumDeps > R.remainingWords() / 10)
    return false; // 10 words per dependency unit.
  E.Deps.resize(static_cast<size_t>(NumDeps));
  E.SliceEnumCounts.resize(static_cast<size_t>(NumDeps));
  for (uint64_t I = 0; I != NumDeps; ++I) {
    GoalCache::DepUnit &U = E.Deps[I];
    uint64_t Kind = R.word();
    if (R.failed() || Kind > 1)
      return false;
    U.K = static_cast<GoalCache::DepUnit::Kind>(Kind);
    U.Trait = R.word();
    uint64_t HasHead = R.word();
    if (R.failed() || HasHead > 1)
      return false;
    U.HasHead = HasHead != 0;
    U.HeadKind = R.word();
    U.HeadName = R.word();
    U.HeadTraitName = R.word();
    U.HeadArity = R.word();
    U.HeadMutable = R.word();
    U.Fp = R.word();
    if (U.HeadKind >= NumTypeKinds || U.HeadMutable > 1 ||
        U.HeadArity > 0xFFFFFFFFull)
      return false;
    if (!R.u32(E.SliceEnumCounts[I]))
      return false;
  }
  uint64_t NumHashes = R.word();
  if (R.failed() || NumHashes > R.remainingWords())
    return false;
  E.StackHashes.reserve(static_cast<size_t>(NumHashes));
  for (uint64_t I = 0; I != NumHashes; ++I)
    E.StackHashes.push_back(R.word());

  uint64_t NumGoals = R.word();
  if (R.failed() || NumGoals > R.remainingWords() / 10)
    return false; // 10 fixed words per goal record.
  E.Goals.resize(static_cast<size_t>(NumGoals));
  for (uint64_t I = 0; I != NumGoals; ++I) {
    GoalCache::GoalRec &G = E.Goals[I];
    if (!R.enc(G.Pred))
      return false;
    uint64_t Result = R.word();
    if (R.failed() || Result >= NumEvalResults)
      return false;
    G.Result = static_cast<EvalResult>(Result);
    if (!R.u32(G.RelDepth) || !readSpan(R, G.Origin))
      return false;
    if (!R.u32(G.ParentCandidate) || !R.u32(G.SelectedCandidate))
      return false;
    uint64_t NumCandRefs = R.word();
    if (R.failed() || NumCandRefs > R.remainingWords())
      return false;
    G.Candidates.resize(static_cast<size_t>(NumCandRefs));
    for (uint32_t &C : G.Candidates)
      if (!R.u32(C))
        return false;
    if (!R.enc(G.NormalizedValue))
      return false;
    uint64_t FromCache = R.word();
    if (R.failed() || FromCache > 1)
      return false;
    G.FromCache = FromCache != 0;
  }

  uint64_t NumCands = R.word();
  if (R.failed() || NumCands > R.remainingWords() / 8)
    return false; // 8 fixed words per candidate record.
  E.Cands.resize(static_cast<size_t>(NumCands));
  for (uint64_t I = 0; I != NumCands; ++I) {
    GoalCache::CandRec &C = E.Cands[I];
    uint64_t Kind = R.word();
    if (R.failed() || Kind >= NumCandKinds)
      return false;
    C.Kind = static_cast<CandidateKind>(Kind);
    if (!R.u32(C.ImplUnit) || !R.u32(C.ImplPos))
      return false;
    C.BuiltinName = R.word();
    uint64_t HasAssumption = R.word();
    if (R.failed() || HasAssumption > 1)
      return false;
    C.HasAssumption = HasAssumption != 0;
    if (C.HasAssumption && !R.enc(C.Assumption))
      return false;
    uint64_t Result = R.word();
    if (R.failed() || Result >= NumEvalResults)
      return false;
    C.Result = static_cast<EvalResult>(Result);
    if (!R.u32(C.Parent))
      return false;
    uint64_t NumSubGoals = R.word();
    if (R.failed() || NumSubGoals > R.remainingWords())
      return false;
    C.SubGoals.resize(static_cast<size_t>(NumSubGoals));
    for (uint32_t &Sub : C.SubGoals)
      if (!R.u32(Sub))
        return false;
  }

  uint64_t NumBinds = R.word();
  if (R.failed() || NumBinds > R.remainingWords() / 2)
    return false;
  E.Binds.resize(static_cast<size_t>(NumBinds));
  for (GoalCache::BindRec &B : E.Binds) {
    B.Var = R.word();
    if (!R.enc(B.Value))
      return false;
  }

  uint64_t HasWinner = R.word();
  if (R.failed() || HasWinner > 1)
    return false;
  E.HasWinner = HasWinner != 0;
  if (E.HasWinner) {
    uint64_t Kind = R.word();
    if (R.failed() || Kind >= NumCandKinds)
      return false;
    E.WinnerKind = static_cast<CandidateKind>(Kind);
    if (!R.u32(E.WinnerImplUnit) || !R.u32(E.WinnerImplPos))
      return false;
    uint64_t NumSubst = R.word();
    if (R.failed() || NumSubst > R.remainingWords() / 2)
      return false;
    E.WinnerSubst.resize(static_cast<size_t>(NumSubst));
    for (auto &[NameTok, ValueEnc] : E.WinnerSubst) {
      NameTok = R.word();
      if (!R.enc(ValueEnc))
        return false;
    }
  }
  return !R.failed();
}

/// Is \p Unit a positional impl reference the splice can resolve: a
/// valid index naming an ImplSlice dependency unit? (The position
/// itself is checked at splice time against the consumer's slice; see
/// Solver's diskEntrySane.)
bool validImplUnit(const GoalCache::Entry &E, uint32_t Unit) {
  return Unit < E.Deps.size() &&
         E.Deps[Unit].K == GoalCache::DepUnit::Kind::ImplSlice;
}

/// Semantic validation of one staged entry, with \p Walk in validate or
/// rewrite mode. Everything spliceEntry and cacheAdmissible assume
/// about a recorded entry is established here:
///
///  - every token stream follows the encoder grammar exactly, symbols
///    inside the symbol table, intern variables below NumFreshVars
///    (key streams: no intern variables at all);
///  - every cross-record index (candidate lists, subgoal lists, parent
///    links, winner/impl references) lands inside its target array;
///  - the goal/candidate graph is the tree the recorder built: each
///    non-root goal is the subgoal of exactly one candidate (its
///    recorded ParentCandidate), each candidate belongs to exactly one
///    goal (its recorded Parent), and subgoal indices strictly increase
///    away from the root, so any walk over the spliced subtree
///    terminates;
///  - stack hashes are sorted (cacheAdmissible binary-searches them);
///  - the root result is a definite Yes/No and resource claims are
///    within the cacheability predicate's bounds.
bool validateEntry(StagedEntry &S, EncWalk &Walk) {
  GoalCache::Entry &E = *S.E;

  if (E.NumFreshVars > MaxFreshVars || E.MaxRelDepth > MaxRelDepthLimit)
    return false;
  if (E.TotalEvals == 0 || E.TotalEvals > MaxTotalEvals)
    return false;
  if (E.Goals.empty() || E.Goals.size() > 0xFFFFFFFFull ||
      E.Cands.size() > 0xFFFFFFFFull)
    return false;
  if (E.Goals[0].Result != EvalResult::Yes &&
      E.Goals[0].Result != EvalResult::No)
    return false;

  // Key streams are encoded with raw (extern-only) variable tokens.
  Walk.MaxInternRel = 0;
  if (!Walk.wholePred(S.K.Pred))
    return false;
  if (S.HasEnv && !Walk.wholeEnv(S.Env))
    return false;

  Walk.MaxInternRel = E.NumFreshVars;
  for (GoalCache::DepUnit &U : E.Deps)
    if (!Walk.bareSym(U.Trait) || !Walk.bareSym(U.HeadName) ||
        !Walk.bareSym(U.HeadTraitName))
      return false;

  for (size_t I = 1; I < E.StackHashes.size(); ++I)
    if (E.StackHashes[I - 1] > E.StackHashes[I])
      return false;

  // Ownership maps for the tree-shape check.
  std::vector<uint32_t> CandOwner(E.Cands.size(), GoalCache::NoId);
  std::vector<uint32_t> GoalOwner(E.Goals.size(), GoalCache::NoId);

  for (size_t I = 0; I != E.Goals.size(); ++I) {
    GoalCache::GoalRec &G = E.Goals[I];
    if (!Walk.wholePred(G.Pred))
      return false;
    if (!G.NormalizedValue.empty() && !Walk.wholeType(G.NormalizedValue))
      return false;
    if (G.RelDepth > E.MaxRelDepth)
      return false;
    if (G.SelectedCandidate != GoalCache::NoId &&
        G.SelectedCandidate >= E.Cands.size())
      return false;
    if (I != 0 && G.ParentCandidate != GoalCache::NoId &&
        G.ParentCandidate >= E.Cands.size())
      return false;
    for (uint32_t C : G.Candidates) {
      if (C >= E.Cands.size() || CandOwner[C] != GoalCache::NoId)
        return false;
      CandOwner[C] = static_cast<uint32_t>(I);
    }
  }
  for (size_t J = 0; J != E.Cands.size(); ++J) {
    GoalCache::CandRec &C = E.Cands[J];
    if (C.HasAssumption && !Walk.wholePred(C.Assumption))
      return false;
    if (!Walk.bareSym(C.BuiltinName))
      return false;
    if (C.Parent >= E.Goals.size())
      return false;
    // The candidate must be listed by exactly the goal it names as its
    // parent (CandOwner was filled from the goals' candidate lists).
    if (CandOwner[J] != C.Parent)
      return false;
    if (C.Kind == CandidateKind::Impl && C.ImplUnit != GoalCache::NoId &&
        !validImplUnit(E, C.ImplUnit))
      return false;
    for (uint32_t Sub : C.SubGoals) {
      // Strictly increasing away from the root: child goal ids exceed
      // the parent goal's, so subtree walks terminate; and a goal is
      // the subgoal of exactly one candidate — the one it recorded.
      if (Sub >= E.Goals.size() || Sub <= C.Parent)
        return false;
      if (GoalOwner[Sub] != GoalCache::NoId ||
          E.Goals[Sub].ParentCandidate != J)
        return false;
      GoalOwner[Sub] = static_cast<uint32_t>(J);
    }
  }

  for (GoalCache::BindRec &B : E.Binds) {
    // finishRecording never keeps a binding to a variable the subtree
    // did not allocate, so on disk every bind target is intern-tagged.
    if ((B.Var & 1) == 0)
      return false;
    if ((B.Var >> 1) >= E.NumFreshVars)
      return false;
    if (!Walk.wholeType(B.Value))
      return false;
  }

  if (E.HasWinner) {
    if (E.WinnerKind == CandidateKind::Impl &&
        E.WinnerImplUnit != GoalCache::NoId &&
        !validImplUnit(E, E.WinnerImplUnit))
      return false;
    for (auto &[NameTok, ValueEnc] : E.WinnerSubst)
      if (!Walk.bareSym(NameTok) || !Walk.wholeType(ValueEnc))
        return false;
  }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Public API
//===----------------------------------------------------------------------===//

const char *argus::cacheLoadStatusName(CacheLoadStatus S) {
  switch (S) {
  case CacheLoadStatus::Ok:
    return "ok";
  case CacheLoadStatus::IoError:
    return "io_error";
  case CacheLoadStatus::BadMagic:
    return "bad_magic";
  case CacheLoadStatus::BadVersion:
    return "bad_version";
  case CacheLoadStatus::Truncated:
    return "truncated";
  case CacheLoadStatus::BadChecksum:
    return "bad_checksum";
  case CacheLoadStatus::Malformed:
    return "malformed";
  }
  return "unknown";
}

std::string argus::serializeGoalCache(const GoalCache &Cache) {
  const CacheSymbolRegistry &Reg = Cache.symbols();
  size_t NumSyms = Reg.size();

  ImageWriter Syms;
  for (size_t I = 0; I != NumSyms; ++I)
    Syms.text(Reg.text(static_cast<uint32_t>(I)));

  std::vector<std::pair<GoalCache::Key, GoalCache::EntryPtr>> Snapshot =
      Cache.snapshot();
  ImageWriter Entries;
  for (const auto &[K, E] : Snapshot)
    writeEntry(Entries, K, *E);

  ImageWriter W;
  uint64_t Header[HeaderWords] = {};
  Header[HdrMagic] = Magic;
  Header[HdrVersion] = CacheImageVersion;
  Header[HdrFlags] = 0;
  Header[HdrSymCount] = NumSyms;
  Header[HdrSymWords] = Syms.words();
  Header[HdrEntryCount] = Snapshot.size();
  Header[HdrEntryWords] = Entries.words();
  Header[HdrSymCksum] = fnv1a(Syms.Buf.data(), Syms.Buf.size());
  Header[HdrEntryCksum] = fnv1a(Entries.Buf.data(), Entries.Buf.size());
  for (size_t I = 0; I != HdrCksum; ++I)
    W.word(Header[I]);
  W.word(fnv1a(W.Buf.data(), W.Buf.size())); // Header checksum.
  W.Buf += Syms.Buf;
  W.Buf += Entries.Buf;
  W.word(fnv1a(W.Buf.data(), W.Buf.size())); // Whole-image checksum.
  return std::move(W.Buf);
}

CacheLoadResult argus::deserializeGoalCache(GoalCache &Cache,
                                            std::string_view Image) {
  CacheLoadResult R;
  auto Reject = [&R](CacheLoadStatus S, std::string Detail) {
    R.Status = S;
    R.Detail = std::move(Detail);
    return R;
  };

  if (Image.size() < (HeaderWords + 1) * 8 || Image.size() % 8 != 0)
    return Reject(CacheLoadStatus::Truncated,
                  "image smaller than a header or not word-aligned");

  ImageReader Hdr(Image.substr(0, HeaderWords * 8));
  uint64_t Header[HeaderWords];
  for (uint64_t &Word : Header)
    Word = Hdr.word();
  if (Header[HdrMagic] != Magic)
    return Reject(CacheLoadStatus::BadMagic, "bad magic");
  if (fnv1a(Image.data(), HdrCksum * 8) != Header[HdrCksum])
    return Reject(CacheLoadStatus::BadChecksum, "header checksum mismatch");
  if (Header[HdrVersion] != CacheImageVersion)
    return Reject(CacheLoadStatus::BadVersion,
                  "image version " + std::to_string(Header[HdrVersion]) +
                      ", expected " + std::to_string(CacheImageVersion));
  if (Header[HdrFlags] != 0)
    return Reject(CacheLoadStatus::Malformed, "unknown header flags");
  if (fnv1a(Image.data(), Image.size() - 8) !=
      ImageReader(Image.substr(Image.size() - 8)).word())
    return Reject(CacheLoadStatus::BadChecksum, "image checksum mismatch");

  uint64_t TotalWords = Image.size() / 8;
  uint64_t SymWords = Header[HdrSymWords];
  uint64_t EntryWords = Header[HdrEntryWords];
  // Guard each term before summing so forged sizes cannot wrap.
  if (SymWords > TotalWords || EntryWords > TotalWords ||
      HeaderWords + SymWords + EntryWords + 1 != TotalWords)
    return Reject(CacheLoadStatus::Malformed, "section sizes disagree"
                                              " with the image size");
  R.EntriesInImage = Header[HdrEntryCount];

  std::string_view SymData =
      Image.substr(HeaderWords * 8, static_cast<size_t>(SymWords) * 8);
  std::string_view EntryData = Image.substr(
      (HeaderWords + static_cast<size_t>(SymWords)) * 8,
      static_cast<size_t>(EntryWords) * 8);
  if (fnv1a(SymData.data(), SymData.size()) != Header[HdrSymCksum])
    return Reject(CacheLoadStatus::BadChecksum,
                  "symbol section checksum mismatch");
  if (fnv1a(EntryData.data(), EntryData.size()) != Header[HdrEntryCksum])
    return Reject(CacheLoadStatus::BadChecksum,
                  "entry section checksum mismatch");

  // --- Symbol table. Each string costs at least one word, so the count
  // is bounded by the section size before anything is reserved.
  uint64_t NumSyms = Header[HdrSymCount];
  if (NumSyms > SymWords)
    return Reject(CacheLoadStatus::Malformed,
                  "symbol count exceeds the symbol section");
  std::vector<std::string_view> Texts;
  Texts.reserve(static_cast<size_t>(NumSyms));
  {
    ImageReader SymReader(SymData);
    for (uint64_t I = 0; I != NumSyms; ++I) {
      std::string_view Text;
      if (!SymReader.text(Text))
        return Reject(CacheLoadStatus::Malformed, "bad symbol record");
      Texts.push_back(Text);
    }
    if (!SymReader.atEnd())
      return Reject(CacheLoadStatus::Malformed,
                    "trailing bytes in the symbol section");
  }

  // --- Entries: parse and validate everything before the cache or its
  // registry is touched (all-or-nothing).
  uint64_t NumEntries = Header[HdrEntryCount];
  if (NumEntries > EntryWords)
    return Reject(CacheLoadStatus::Malformed,
                  "entry count exceeds the entry section");
  std::vector<StagedEntry> Staged;
  Staged.reserve(static_cast<size_t>(NumEntries));
  {
    ImageReader EntryReader(EntryData);
    EncWalk Validate;
    Validate.NumSyms = NumSyms;
    for (uint64_t I = 0; I != NumEntries; ++I) {
      StagedEntry S;
      if (!readEntry(EntryReader, S) || !validateEntry(S, Validate))
        return Reject(CacheLoadStatus::Malformed,
                      "bad entry record " + std::to_string(I));
      Staged.push_back(std::move(S));
    }
    if (!EntryReader.atEnd())
      return Reject(CacheLoadStatus::Malformed,
                    "trailing bytes in the entry section");
  }

  // --- Commit: intern the symbol table into the target registry and
  // rewrite every symbol token through the id map. The rewrite pass
  // retraces exactly the streams validation covered.
  std::vector<uint32_t> Remap;
  Remap.reserve(Texts.size());
  for (std::string_view Text : Texts)
    Remap.push_back(Cache.symbols().intern(Text));

  // Identical environments collapse onto one allocation, mirroring how
  // a live run's goals share their environment encoding.
  std::map<CacheEnc, std::shared_ptr<const CacheEnc>> EnvPool;
  EncWalk Rewrite;
  Rewrite.NumSyms = NumSyms;
  Rewrite.Remap = &Remap;
  for (StagedEntry &S : Staged) {
    GoalCache::Entry &E = *S.E;
    Rewrite.MaxInternRel = 0;
    bool Ok = Rewrite.wholePred(S.K.Pred);
    if (S.HasEnv)
      Ok = Ok && Rewrite.wholeEnv(S.Env);
    Rewrite.MaxInternRel = E.NumFreshVars;
    for (GoalCache::DepUnit &U : E.Deps)
      Ok = Ok && Rewrite.bareSym(U.Trait) && Rewrite.bareSym(U.HeadName) &&
           Rewrite.bareSym(U.HeadTraitName);
    for (GoalCache::GoalRec &G : E.Goals) {
      Ok = Ok && Rewrite.wholePred(G.Pred);
      if (!G.NormalizedValue.empty())
        Ok = Ok && Rewrite.wholeType(G.NormalizedValue);
    }
    for (GoalCache::CandRec &C : E.Cands) {
      Ok = Ok && Rewrite.bareSym(C.BuiltinName);
      if (C.HasAssumption)
        Ok = Ok && Rewrite.wholePred(C.Assumption);
    }
    for (GoalCache::BindRec &B : E.Binds)
      Ok = Ok && Rewrite.wholeType(B.Value);
    for (auto &[NameTok, ValueEnc] : E.WinnerSubst)
      Ok = Ok && Rewrite.bareSym(NameTok) && Rewrite.wholeType(ValueEnc);
    if (!Ok) // Unreachable after validation; defense in depth.
      return Reject(CacheLoadStatus::Malformed, "rewrite failed");

    if (S.HasEnv) {
      auto [It, Inserted] = EnvPool.try_emplace(S.Env, nullptr);
      if (Inserted)
        It->second = std::make_shared<const CacheEnc>(It->first);
      S.K.Env = It->second;
    }
    E.FromDisk = true;
    // Never trust a hash from disk; recompute from the rewritten key.
    GoalCache::finalizeKey(S.K);
    if (Cache.insert(S.K, S.E))
      ++R.EntriesLoaded;
  }
  return R;
}

CacheSaveResult argus::saveGoalCache(const GoalCache &Cache,
                                     const std::string &Path,
                                     FaultInjector *Faults,
                                     std::string_view FaultScope) {
  CacheSaveResult R;
  std::string Image = serializeGoalCache(Cache);
  std::string TmpPath = Path + ".tmp";
  if (Faults && Faults->shouldFail("cache.io", FaultScope)) {
    R.Detail = "injected I/O fault (site cache.io)";
    return R;
  }
  FILE *File = std::fopen(TmpPath.c_str(), "wb");
  if (!File) {
    R.Detail = "cannot open " + TmpPath + " for writing";
    return R;
  }
  size_t Written = std::fwrite(Image.data(), 1, Image.size(), File);
  bool Flushed = std::fclose(File) == 0;
  if (Written != Image.size() || !Flushed) {
    R.Detail = "short write to " + TmpPath;
    std::remove(TmpPath.c_str());
    return R;
  }
  // Atomic publish: readers see the old image or the new one, never a
  // torn mix.
  if (std::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    R.Detail = "cannot rename " + TmpPath + " to " + Path;
    std::remove(TmpPath.c_str());
    return R;
  }
  R.Ok = true;
  R.EntriesSaved = Cache.size();
  R.ImageBytes = Image.size();
  return R;
}

CacheLoadResult argus::loadGoalCache(GoalCache &Cache,
                                     const std::string &Path,
                                     FaultInjector *Faults,
                                     std::string_view FaultScope) {
  CacheLoadResult R;
  if (Faults && Faults->shouldFail("cache.io", FaultScope)) {
    R.Status = CacheLoadStatus::IoError;
    R.Detail = "injected I/O fault (site cache.io)";
    return R;
  }
  FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    R.Status = CacheLoadStatus::IoError;
    R.Detail = "cannot read " + Path;
    return R;
  }
  std::string Image;
  char Buf[65536];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Image.append(Buf, N);
  bool ReadError = std::ferror(File) != 0;
  std::fclose(File);
  if (ReadError) {
    R.Status = CacheLoadStatus::IoError;
    R.Detail = "read error on " + Path;
    return R;
  }
  if (Faults && Faults->shouldFail("cache.load_corrupt", FaultScope) &&
      !Image.empty()) {
    // One deterministic bit flip mid-image: the checksum rejection path
    // runs end-to-end against a real (just-corrupted) image.
    Image[Image.size() / 2] ^= 0x40;
  }
  R = deserializeGoalCache(Cache, Image);
  if (!R.ok())
    R.Detail += " (" + Path + ")";
  return R;
}
