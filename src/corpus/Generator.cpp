//===- corpus/Generator.cpp -----------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Generator.h"

#include <algorithm>

using namespace argus;

namespace {

class TreeBuilder {
public:
  TreeBuilder(const GeneratorOptions &Opts, Session &S, Program &Prog,
              InferenceTree &Tree)
      : Opts(Opts), S(S), Prog(Prog), Tree(Tree), Gen(Opts.Seed),
        Remaining(Opts.TargetNodes) {
    declarePool();
  }

  void run() {
    IGoalId Root = buildFailingGoal(ICandId::invalid(), 0);
    Tree.setRoot(Root);
    // Spend any leftover budget on successful context below the root so
    // the size target is met even for shallow failing skeletons.
    while (Remaining > 2 && !Tree.goal(Root).Candidates.empty()) {
      ICandId Cand = Tree.goal(Root).Candidates[0];
      attachSuccessGoal(Cand, 1);
    }
  }

private:
  /// A small pool of declared types and traits so generated predicates
  /// look like (and classify like) real ones.
  void declarePool() {
    for (int I = 0; I != 12; ++I) {
      TypeCtorDecl Ctor;
      Ctor.Name = S.name("gen::T" + std::to_string(I));
      if (I % 3 == 0)
        Ctor.Params.push_back(S.name("A"));
      Ctor.Loc = I % 2 ? Locality::External : Locality::Local;
      Prog.addTypeCtor(std::move(Ctor));
      Ctors.push_back(S.name("gen::T" + std::to_string(I)));
    }
    for (int I = 0; I != 8; ++I) {
      TraitDecl Trait;
      Trait.Name = S.name("gen::Tr" + std::to_string(I));
      Trait.Loc = I % 2 ? Locality::External : Locality::Local;
      Prog.addTrait(std::move(Trait));
      Traits.push_back(S.name("gen::Tr" + std::to_string(I)));
    }
  }

  /// A fresh-ish predicate; the counter varies the subject so distinct
  /// leaves stay distinct atoms.
  Predicate nextPredicate() {
    ++Counter;
    Symbol Ctor = Ctors[Counter % Ctors.size()];
    const TypeCtorDecl *Decl = Prog.findTypeCtor(Ctor);
    TypeId Subject;
    if (!Decl->Params.empty()) {
      TypeId Inner =
          S.types().adt(Ctors[(Counter / Ctors.size() + 1) % Ctors.size()]);
      // Nullary inner only; recursion depth 1 keeps types small.
      if (const TypeCtorDecl *InnerDecl = Prog.findTypeCtor(
              S.types().get(Inner).Name);
          !InnerDecl->Params.empty())
        Inner = S.types().unit();
      Subject = S.types().adt(Ctor, {Inner});
    } else {
      Subject = S.types().adt(Ctor);
    }
    return Predicate::traitBound(Subject, Traits[Counter % Traits.size()]);
  }

  IGoalId makeGoal(ICandId Parent, uint32_t Depth, EvalResult Result) {
    IGoalId Id = Tree.makeGoal();
    IdealGoal &Goal = Tree.goal(Id);
    Goal.Pred = nextPredicate();
    Goal.Result = Result;
    Goal.Parent = Parent;
    Goal.Depth = Depth;
    if (Remaining)
      --Remaining;
    return Id;
  }

  ICandId makeCandidate(IGoalId Parent, EvalResult Result) {
    ICandId Id = Tree.makeCandidate();
    IdealCandidate &Cand = Tree.candidate(Id);
    Cand.Kind = CandidateKind::Builtin;
    Cand.BuiltinName = S.name("generated");
    Cand.Result = Result;
    Cand.Parent = Parent;
    Tree.goal(Parent).Candidates.push_back(Id);
    if (Remaining)
      --Remaining;
    return Id;
  }

  /// A successful subtree of a few nodes hanging off \p Parent.
  void attachSuccessGoal(ICandId Parent, uint32_t Depth) {
    IGoalId Goal = makeGoal(Parent, Depth, EvalResult::Yes);
    Tree.candidate(Parent).SubGoals.push_back(Goal);
    if (Remaining < 2 || Depth > Opts.MaxFailDepth)
      return;
    ICandId Cand = makeCandidate(Goal, EvalResult::Yes);
    size_t Children = Gen.below(Opts.MaxFanout + 1);
    for (size_t I = 0; I != Children && Remaining > 2; ++I)
      attachSuccessGoal(Cand, Depth + 1);
  }

  IGoalId buildFailingGoal(ICandId Parent, uint32_t Depth) {
    // Leaf when the budget or depth runs out.
    bool MustLeaf = Remaining < 8 || Depth >= Opts.MaxFailDepth;
    if (MustLeaf) {
      EvalResult Result = Gen.chance(Opts.OverflowProbability)
                              ? EvalResult::Overflow
                              : EvalResult::No;
      return makeGoal(Parent, Depth, Result);
    }

    IGoalId Goal = makeGoal(Parent, Depth, EvalResult::No);
    size_t FailingCandidates =
        Gen.chance(Opts.BranchProbability) ? Opts.BranchWidth : 1;
    for (size_t C = 0; C != FailingCandidates; ++C) {
      ICandId Cand = makeCandidate(Goal, EvalResult::No);
      // Failing subgoals continue the skeleton (one, for realistic
      // trees)...
      for (size_t F = 0; F != Opts.FailingSubgoalsPerCandidate; ++F) {
        IGoalId Failing = buildFailingGoal(Cand, Depth + 1);
        Tree.candidate(Cand).SubGoals.push_back(Failing);
      }
      // ...plus successful siblings carrying most of the mass.
      size_t Successes = Gen.below(Opts.MaxFanout + 1);
      for (size_t I = 0; I != Successes && Remaining > 2; ++I)
        attachSuccessGoal(Cand, Depth + 1);
    }
    return Goal;
  }

  const GeneratorOptions &Opts;
  Session &S;
  Program &Prog;
  InferenceTree &Tree;
  Rng Gen;
  size_t Remaining;
  size_t Counter = 0;
  std::vector<Symbol> Ctors;
  std::vector<Symbol> Traits;
};

} // namespace

GeneratedWorkload argus::generateTree(const GeneratorOptions &Opts) {
  GeneratedWorkload Out;
  Out.S = std::make_unique<Session>();
  Out.Prog = std::make_unique<Program>(*Out.S);
  TreeBuilder Builder(Opts, *Out.S, *Out.Prog, Out.Tree);
  Builder.run();
  return Out;
}
