//===- corpus/Corpus.h - The evaluation program suite ---------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 17-program evaluation suite used by the Figure 12a experiment,
/// standing in for the paper's curation of Semmler's corpus of complex
/// trait errors. Each entry is an L_TRAIT program with a single injected
/// fault and a `root_cause` annotation naming the ground-truth failing
/// predicate.
///
/// Families mirror the paper's materials:
///  - diesel: miniature model of the Diesel query builder (Section 2.1);
///  - bevy: miniature model of Bevy's ECS system registration
///    (Section 2.3);
///  - axum: miniature model of Axum's handler traits;
///  - ast: the associated-type recursion of Section 2.2, plus another
///    overflow shape;
///  - brew and space: the paper's synthetic libraries (potion recipes and
///    flight plans), structurally mirroring the real ones.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_CORPUS_CORPUS_H
#define ARGUS_CORPUS_CORPUS_H

#include "tlang/Parser.h"
#include "tlang/Program.h"

#include <memory>
#include <string>
#include <vector>

namespace argus {

struct CorpusEntry {
  std::string Id;          ///< e.g. "diesel-missing-join".
  std::string Family;      ///< "diesel", "bevy", "axum", "ast", "brew",
                           ///< "space".
  std::string Description; ///< The injected fault, in one sentence.
  std::string Source;      ///< The DSL program text.
};

/// The full 17-program suite, in stable order.
const std::vector<CorpusEntry> &evaluationSuite();

/// Adversarial programs for the resource-governance tests and benches:
/// solver blowups and DNF-dense trees engineered to exceed any
/// interactive deadline. Deliberately NOT part of evaluationSuite() (or
/// examples/) — they are only ever run under an ExecutionBudget.
const std::vector<CorpusEntry> &stressSuite();

/// Entries contributed by each family (concatenated by
/// evaluationSuite()).
std::vector<CorpusEntry> dieselEntries();
std::vector<CorpusEntry> bevyEntries();
std::vector<CorpusEntry> axumEntries();
std::vector<CorpusEntry> astEntries();
std::vector<CorpusEntry> brewEntries();
std::vector<CorpusEntry> spaceEntries();

/// A parsed corpus program with its owning session.
struct LoadedProgram {
  std::unique_ptr<Session> S;
  std::unique_ptr<Program> Prog;
};

/// Parses \p Entry; aborts (assert) on parse errors — corpus programs are
/// fixtures and must always parse.
LoadedProgram loadEntry(const CorpusEntry &Entry);

} // namespace argus

#endif // ARGUS_CORPUS_CORPUS_H
