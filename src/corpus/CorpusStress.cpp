//===- corpus/CorpusStress.cpp - Adversarial governance corpus -*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Programs built to blow the paper's own worst cases past any
/// interactive deadline (Figure 12b's DNF timeouts; rustc's
/// recursion-limit blowups), used to exercise ResourceGovernor
/// degradation. Never run these without a budget: the solver blowup
/// burns the full 2M-goal-evaluation ceiling (seconds of work) and the
/// DNF program normalizes 2^24 conjuncts through the truncation cap.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

#include <sstream>

using namespace argus;

namespace {

// Binary recursion with linearly growing self types: every evaluation of
// `Node<A, B>: Blow` spawns two distinct subgoals (asymmetric clauses, so
// they never collapse into one), and the types grow one Node per step, so
// neither the ancestor-cycle detector nor memoization can cut it off —
// only the depth limit per path and MaxGoalEvaluations overall. At 2M
// evaluations this runs for seconds on any machine, guaranteeing a 100ms
// deadline trips mid-solve.
const char *SolveBlowupSource = R"(
struct Leaf;
struct Node<A, B>;
trait Blow;
impl<A, B> Blow for Node<A, B>
  where Node<A, Node<B, Leaf>>: Blow, Node<Node<A, Leaf>, B>: Blow;
goal Node<Leaf, Leaf>: Blow;
root_cause Node<Leaf, Leaf>: Blow;
)";

/// One Pick obligation per selector, each with two failing candidate
/// impls (an OR of two atoms). Conjoining K binary disjunctions yields
/// 2^K conjuncts before truncation — the Figure 12b blowup shape.
void appendDnfDense(std::ostringstream &Src, int NumSelectors,
                    const char *Prefix) {
  Src << "trait " << Prefix << "Blowup;\n";
  Src << "struct " << Prefix << "App;\n";
  Src << "trait " << Prefix << "Pick;\n";
  Src << "trait " << Prefix << "OptA;\n";
  Src << "trait " << Prefix << "OptB;\n";
  for (int I = 0; I != NumSelectors; ++I)
    Src << "struct " << Prefix << "Sel" << I << ";\n";
  // The two impls per selector overlap on purpose: overlap is what gives
  // the goal two candidates, i.e. an OR node in the tree.
  for (int I = 0; I != NumSelectors; ++I) {
    Src << "impl " << Prefix << "Pick for " << Prefix << "Sel" << I
        << " where " << Prefix << "Sel" << I << ": " << Prefix << "OptA;\n";
    Src << "impl " << Prefix << "Pick for " << Prefix << "Sel" << I
        << " where " << Prefix << "Sel" << I << ": " << Prefix << "OptB;\n";
  }
  Src << "impl " << Prefix << "Blowup for " << Prefix << "App where";
  for (int I = 0; I != NumSelectors; ++I)
    Src << (I ? "," : "") << " " << Prefix << "Sel" << I << ": " << Prefix
        << "Pick";
  Src << ";\n";
  Src << "goal " << Prefix << "App: " << Prefix << "Blowup;\n";
  Src << "root_cause " << Prefix << "Sel0: " << Prefix << "OptA;\n";
}

std::vector<CorpusEntry> buildStressSuite() {
  std::vector<CorpusEntry> Entries;

  Entries.push_back(CorpusEntry{
      "stress-solve-blowup", "stress",
      "Binary impl recursion over growing types; burns the full "
      "MaxGoalEvaluations budget (seconds) unless a budget stops it",
      SolveBlowupSource});

  {
    std::ostringstream Src;
    Src << "// 2^24 DNF conjuncts before truncation.\n";
    appendDnfDense(Src, 24, "D");
    Entries.push_back(CorpusEntry{
        "stress-dnf-dense", "stress",
        "24 two-way failing obligations; DNF normalization explodes to "
        "2^24 conjuncts and churns against the truncation cap",
        Src.str()});
  }

  {
    // The acceptance-criteria program: the solver blowup guarantees a
    // 100ms deadline trips (machine-independent), and the DNF-dense
    // goals are behind it for when the solve stage is given more room.
    std::ostringstream Src;
    Src << SolveBlowupSource;
    appendDnfDense(Src, 24, "C");
    Entries.push_back(CorpusEntry{
        "stress-deadline-combined", "stress",
        "Solver blowup followed by a DNF-dense goal; exceeds a 100ms "
        "deadline in the solve stage on any machine",
        Src.str()});
  }

  return Entries;
}

} // namespace

const std::vector<CorpusEntry> &argus::stressSuite() {
  static const std::vector<CorpusEntry> Suite = buildStressSuite();
  return Suite;
}
