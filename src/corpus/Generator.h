//===- corpus/Generator.h - Synthetic inference-tree workloads -*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates synthetic idealized inference trees with controllable size
/// and branching, for the Figure 12b experiment (DNF normalization time
/// versus tree size, swept from 1 node to the paper's maximum of ~37k)
/// and for property tests. Generated trees mirror the statistics of real
/// ones: most nodes sit in *successful* subtrees that the solver explored
/// and proved, while the failing skeleton — which is what DNF
/// normalization actually traverses — is comparatively small, with
/// occasional branch points.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_CORPUS_GENERATOR_H
#define ARGUS_CORPUS_GENERATOR_H

#include "extract/InferenceTree.h"
#include "support/Random.h"
#include "tlang/Program.h"

#include <memory>

namespace argus {

struct GeneratorOptions {
  /// Approximate total node count (goals + candidates); the generator
  /// lands within a few percent.
  size_t TargetNodes = 1000;

  uint64_t Seed = 0;

  /// Probability that a failing goal is a branch point with BranchWidth
  /// failing candidates (the Bevy shape) instead of one.
  double BranchProbability = 0.10;

  /// Failing candidates at a branch point (the OR width of the DNF).
  size_t BranchWidth = 2;

  /// Failing subgoals under each failing candidate (the AND width of the
  /// DNF). Real trees have 1; the DNF-kernel stress workloads raise it so
  /// conjunction cross products and absorption dominate normalization.
  size_t FailingSubgoalsPerCandidate = 1;

  /// Maximum successful sibling subgoals attached next to each failing
  /// one (the proved obligations rustc also explored).
  size_t MaxFanout = 4;

  /// Probability that a failing chain terminates in an Overflow leaf
  /// rather than a plain No leaf.
  double OverflowProbability = 0.05;

  /// Maximum depth of the failing skeleton.
  uint32_t MaxFailDepth = 48;
};

/// A generated workload: the tree plus the Session/Program that own its
/// interned types (analysis needs the Program for localities).
struct GeneratedWorkload {
  std::unique_ptr<Session> S;
  std::unique_ptr<Program> Prog;
  InferenceTree Tree;
};

GeneratedWorkload generateTree(const GeneratorOptions &Opts);

} // namespace argus

#endif // ARGUS_CORPUS_GENERATOR_H
