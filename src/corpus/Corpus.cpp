//===- corpus/Corpus.cpp - Suite aggregation and loading ------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace argus;

const std::vector<CorpusEntry> &argus::evaluationSuite() {
  static const std::vector<CorpusEntry> Suite = [] {
    std::vector<CorpusEntry> All;
    auto Append = [&All](std::vector<CorpusEntry> Entries) {
      for (CorpusEntry &Entry : Entries)
        All.push_back(std::move(Entry));
    };
    Append(dieselEntries());
    Append(bevyEntries());
    Append(axumEntries());
    Append(astEntries());
    Append(brewEntries());
    Append(spaceEntries());
    assert(All.size() == 17 && "the evaluation suite has 17 programs");
    return All;
  }();
  return Suite;
}

LoadedProgram argus::loadEntry(const CorpusEntry &Entry) {
  LoadedProgram Loaded;
  Loaded.S = std::make_unique<Session>();
  Loaded.Prog = std::make_unique<Program>(*Loaded.S);
  ParseResult Result =
      parseSource(*Loaded.Prog, Entry.Id + ".tl", Entry.Source);
  if (!Result.Success) {
    // Corpus programs are fixtures: failing to parse is a bug in this
    // repository, not user input.
    fprintf(stderr, "corpus entry '%s' failed to parse:\n%s",
            Entry.Id.c_str(),
            Result.describe(Loaded.S->sources()).c_str());
    abort();
  }
  assert(!Loaded.Prog->goals().empty() && "corpus entry without goals");
  assert(!Loaded.Prog->rootCauses().empty() &&
         "corpus entry without ground truth");
  return Loaded;
}
