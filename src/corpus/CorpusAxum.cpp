//===- corpus/CorpusAxum.cpp - Axum-family programs -----------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Miniature model of the Axum web framework's handler machinery: a
/// Handler trait with a marker parameter (the same coherence trick as
/// Bevy), FromRequest extractors, and IntoResponse return types.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace argus;

namespace {

const char *AxumPrelude = R"(
// --- axum library (external) ---
#[external] struct axum::Json<T>;
#[external] struct axum::extract::State<T>;
#[external] struct axum::response::Html;
#[external] struct axum::IsFunctionHandler;
#[external] struct axum::IsService;

#[external] trait axum::Handler<Marker>;
#[external] trait axum::FromRequest;
#[external] trait axum::IntoResponse;
#[external] trait axum::Service;
#[external] trait serde::Deserialize;
#[external] trait core::Clone;
#[external, fn_trait] trait axum::HandlerFn<Sig>;

// Tower plumbing behind the Service alternative.
#[external] trait tower::TowerService;
#[external] impl<Svc> Service for Svc where Svc: TowerService;

// The Service alternative is assembled first (impl declaration order).
#[external] impl<Svc> Handler<IsService> for Svc where Svc: Service;
#[external] impl<P, R, F> Handler<(IsFunctionHandler, fn(P) -> R)> for F
  where F: HandlerFn<fn(P) -> R>, P: FromRequest, R: IntoResponse;

#[external] impl<T> FromRequest for Json<T> where T: Deserialize;
#[external] impl<T> FromRequest for State<T> where T: Clone;
#[external] impl IntoResponse for Html;
)";

} // namespace

std::vector<CorpusEntry> argus::axumEntries() {
  std::vector<CorpusEntry> Entries;

  // 7. The classic Axum pitfall: a Json<T> extractor whose payload type
  // is missing #[derive(Deserialize)].
  Entries.push_back(CorpusEntry{
      "axum-handler-deserialize", "axum",
      "Json extractor payload lacks a Deserialize implementation",
      std::string(AxumPrelude) + R"(
struct UserPayload; // forgot #[derive(Deserialize)]
fn create_user(Json<UserPayload>) -> Html;
// app.route("/users", post(create_user))
goal create_user: Handler<?M>;
root_cause UserPayload: Deserialize;
)"});

  // 8. A handler returning an application type that does not implement
  // IntoResponse.
  Entries.push_back(CorpusEntry{
      "axum-missing-intoresponse", "axum",
      "Handler return type lacks IntoResponse",
      std::string(AxumPrelude) + R"(
struct ApiResult; // no IntoResponse impl
struct LoginPayload;
impl Deserialize for LoginPayload;
fn login(Json<LoginPayload>) -> ApiResult;
goal login: Handler<?M>;
root_cause ApiResult: IntoResponse;
)"});

  // 9. Shared state that is not Clone: State<AppState> requires
  // AppState: Clone.
  Entries.push_back(CorpusEntry{
      "axum-state-clone", "axum",
      "State extractor's AppState lacks Clone",
      std::string(AxumPrelude) + R"(
struct AppState; // forgot #[derive(Clone)]
fn dashboard(State<AppState>) -> Html;
goal dashboard: Handler<?M>;
root_cause AppState: Clone;
)"});

  return Entries;
}
