//===- corpus/CorpusBevy.cpp - Bevy-family programs -----------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Miniature model of Bevy's ECS system registration: IntoSystem with the
/// marker-type trick (two blanket impls kept coherent by distinct marker
/// arguments, Section 2.3 footnote 1), SystemParam for the injectable
/// parameter types, and the fn-trait plumbing connecting function items
/// to systems.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace argus;

namespace {

const char *BevyPrelude = R"(
// --- bevy library (external) ---
#[external] struct bevy::ResMut<T>;
#[external] struct bevy::Res<T>;
#[external] struct bevy::Query<D, F>;
#[external] struct bevy::Assets<T>;
#[external] struct bevy::With<T>;
#[external] struct bevy::IsFunctionSystem;
#[external] struct bevy::IsSystem;

#[external] trait bevy::Resource;
#[external] trait bevy::Asset;
#[external] trait bevy::SystemParam;
#[external] trait bevy::QueryData;
#[external] trait bevy::QueryFilter;
#[external] trait bevy::System;
#[external, fn_trait] trait bevy::SystemParamFunction<Sig>;
#[external, on_unimplemented = "{Self} does not describe a valid system configuration"]
trait bevy::IntoSystem<Marker>;

#[external] impl<T> SystemParam for ResMut<T> where T: Resource;
#[external] impl<T> SystemParam for Res<T> where T: Resource;
#[external] impl<D, F> SystemParam for Query<D, F>
  where D: QueryData, F: QueryFilter;
#[external] impl<T> QueryFilter for With<T> where T: QueryData;

// Internal machinery behind hand-written systems: everything that is a
// System got there through the exclusive-system plumbing.
#[external] trait bevy::ExclusiveSystemParam;
#[external] impl<Sys> System for Sys where Sys: ExclusiveSystemParam;

// The marker-type trick: both impls are blanket impls over all types,
// kept coherent only by the distinct Marker argument. Rust must infer
// the marker, which creates the branch point in the inference tree.
// (The IsSystem alternative is assembled first, as candidate order
// follows impl declaration order.)
#[external] impl<Sys> IntoSystem<IsSystem> for Sys where Sys: System;
#[external] impl<P, Func> IntoSystem<(IsFunctionSystem, fn(P))> for Func
  where Func: SystemParamFunction<fn(P)>, P: SystemParam;
)";

} // namespace

std::vector<CorpusEntry> argus::bevyEntries() {
  std::vector<CorpusEntry> Entries;

  // 4. The Figure 4 program: a system takes Timer by value instead of
  // ResMut<Timer>.
  Entries.push_back(CorpusEntry{
      "bevy-resmut-missing", "bevy",
      "System parameter written as Timer instead of ResMut<Timer> "
      "(Figure 4 of the paper)",
      std::string(BevyPrelude) + R"(
struct Timer;
impl Resource for Timer;
// fn run_timer(mut timer: Timer) { .. }   -- forgot ResMut.
fn run_timer(Timer);
// App::new().add_systems(Update, run_timer)
goal run_timer: IntoSystem<?M>;
root_cause Timer: SystemParam;
)"});

  // 5. The Unofficial Bevy Cheat Book's "Assets<Mesh> without ResMut"
  // pitfall, which the paper used as a study task (Section 5.1.1).
  Entries.push_back(CorpusEntry{
      "bevy-assets-mesh", "bevy",
      "System takes Assets<Mesh> directly instead of ResMut<Assets<Mesh>>",
      std::string(BevyPrelude) + R"(
#[external] struct bevy::Mesh;
#[external] impl Asset for Mesh;
#[external] impl<T> Resource for Assets<T> where T: Asset;
struct Position;
impl QueryData for Position;
struct Marker;
impl QueryData for Marker;
// fn setup(meshes: Assets<Mesh>, q: Query<Position, With<Marker>>)
fn setup(Assets<Mesh>, Query<Position, With<Marker>>);
#[external, fn_trait] trait bevy::SystemParamFunction2<Sig>;
#[external] impl<P0, P1, Func> IntoSystem<(IsFunctionSystem, fn(P0, P1))>
  for Func
  where Func: SystemParamFunction2<fn(P0, P1)>,
        P0: SystemParam, P1: SystemParam;
goal setup: IntoSystem<?M>;
root_cause Assets<Mesh>: SystemParam;
)"});

  // 6. A query whose filter slot holds a component (data) type: Position
  // is QueryData, Enemy is not a QueryFilter.
  Entries.push_back(CorpusEntry{
      "bevy-query-filter", "bevy",
      "Query filter slot holds a component type instead of a filter "
      "(With<Enemy>)",
      std::string(BevyPrelude) + R"(
struct Position;
struct Enemy;
impl QueryData for Position;
impl QueryData for Enemy;
// fn ai(q: Query<Position, Enemy>)  -- should be With<Enemy>.
fn ai(Query<Position, Enemy>);
goal ai: IntoSystem<?M>;
root_cause Enemy: QueryFilter;
)"});

  return Entries;
}
