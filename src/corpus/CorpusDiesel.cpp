//===- corpus/CorpusDiesel.cpp - Diesel-family programs -------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Miniature model of the Diesel query builder: enough trait machinery to
/// reproduce the Section 2.1 failure shapes (the "missing join" chain
/// through LoadQuery -> Query -> ValidWhereClause -> AppearsOnTable ->
/// AppearsInFromClause::Count == Once), plus two more faults from the
/// same family.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace argus;

namespace {

/// Shared library prelude: the Diesel trait machinery (external) and two
/// application tables, users and posts (local, as the table! macro
/// generates them in the user's crate).
const char *DieselPrelude = R"(
// --- diesel library (external) ---
#[external] struct diesel::pg::PgConnection;
#[external] struct diesel::Once;
#[external] struct diesel::Never;
#[external] struct diesel::sql_types::Integer;
#[external] struct diesel::sql_types::Text;
#[external] struct diesel::query_builder::SelectStatement<From, Sel, Wh>;
#[external] struct diesel::query_builder::FromClause<T>;
#[external] struct diesel::query_builder::SelectClause<T>;
#[external] struct diesel::query_builder::WhereClause<T>;
#[external] struct diesel::expression::Grouped<T>;
#[external] struct diesel::expression::operators::Eq<L, R>;
#[external] struct diesel::Row;

#[external] trait diesel::Expression { type SqlType; }
#[external] trait diesel::AppearsInFromClause<QS> { type Count; }
#[external] trait diesel::AppearsOnTable<QS>;
#[external] trait diesel::query_builder::ValidWhereClause<QS>;
#[external] trait diesel::Query;
#[external] trait diesel::LoadQuery<Conn, U>;

#[external] impl<L, R, QS> AppearsOnTable<QS> for Eq<L, R>
  where L: AppearsOnTable<QS>, R: AppearsOnTable<QS>;
#[external] impl<T, QS> AppearsOnTable<QS> for Grouped<T>
  where T: AppearsOnTable<QS>;
#[external] impl<W, QS> ValidWhereClause<QS> for WhereClause<W>
  where W: AppearsOnTable<QS>;
#[external] impl<F, S, W> Query
  for SelectStatement<FromClause<F>, SelectClause<S>, W>
  where W: ValidWhereClause<F>, S: AppearsOnTable<F>;
#[external] impl<T, Conn, U> LoadQuery<Conn, U> for T where T: Query;

// --- application schema (generated locally by the table! macro) ---
struct users::table;
struct users::columns::id;
struct users::columns::name;
struct posts::table;
struct posts::columns::id;

impl AppearsInFromClause<users::table> for users::table {
  type Count = Once;
}
impl AppearsInFromClause<posts::table> for users::table {
  type Count = Never;
}
impl AppearsInFromClause<posts::table> for posts::table {
  type Count = Once;
}
impl AppearsInFromClause<users::table> for posts::table {
  type Count = Never;
}

impl Expression for users::columns::id { type SqlType = Integer; }
impl Expression for users::columns::name { type SqlType = Text; }
impl Expression for posts::columns::id { type SqlType = Integer; }

impl<QS> AppearsOnTable<QS> for users::columns::id
  where <QS as AppearsInFromClause<users::table>>::Count == Once;
impl<QS> AppearsOnTable<QS> for users::columns::name
  where <QS as AppearsInFromClause<users::table>>::Count == Once;
impl<QS> AppearsOnTable<QS> for posts::columns::id
  where <QS as AppearsInFromClause<posts::table>>::Count == Once;
)";

} // namespace

std::vector<CorpusEntry> argus::dieselEntries() {
  std::vector<CorpusEntry> Entries;

  // 1. The Figure 2 program: filter on posts::id without joining posts.
  // The query source is users::table alone, so the projection
  // <users::table as AppearsInFromClause<posts::table>>::Count
  // normalizes to Never instead of Once.
  Entries.push_back(CorpusEntry{
      "diesel-missing-join", "diesel",
      "Query filters on posts::id but never joins the posts table "
      "(Figure 2 of the paper)",
      std::string(DieselPrelude) + R"(
// users::table.filter(users::id.eq(posts::id)).select(users::name)
//   .load(conn)  -- posts was never joined.
goal SelectStatement<FromClause<users::table>,
                     SelectClause<users::columns::name>,
                     WhereClause<Grouped<Eq<users::columns::id,
                                            posts::columns::id>>>>
  : LoadQuery<PgConnection, Row>;
root_cause <users::table as AppearsInFromClause<posts::table>>::Count
  == Once;
)"});

  // 2. Selecting a column from a table that is not in the FROM clause at
  // all (select posts::id from users): the select-clause bound fails.
  Entries.push_back(CorpusEntry{
      "diesel-select-foreign-column", "diesel",
      "SELECT references posts::id while querying only users",
      std::string(DieselPrelude) + R"(
// users::table.select(posts::id).load(conn)
goal SelectStatement<FromClause<users::table>,
                     SelectClause<posts::columns::id>,
                     WhereClause<Grouped<Eq<users::columns::id,
                                            users::columns::id>>>>
  : LoadQuery<PgConnection, Row>;
root_cause <users::table as AppearsInFromClause<posts::table>>::Count
  == Once;
)"});

  // 3. Comparing columns of different SQL types: the expression layer
  // rejects Eq<id, name> because the where-clause requires both sides'
  // SqlType to agree.
  Entries.push_back(CorpusEntry{
      "diesel-type-mismatched-eq", "diesel",
      "WHERE compares an Integer column against a Text column",
      std::string(DieselPrelude) + R"(
#[external] trait diesel::SameSqlType<Other>;
#[external] impl<L, R, T> SameSqlType<R> for L
  where <L as Expression>::SqlType == T,
        <R as Expression>::SqlType == T;
// users::id.eq(users::name): Integer vs Text.
goal users::columns::id: SameSqlType<users::columns::name>;
root_cause <users::columns::name as Expression>::SqlType == Integer;
)"});

  return Entries;
}
