//===- corpus/CorpusSynthetic.cpp - ast / brew / space --------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The remaining corpus families: the associated-type recursion of
/// Section 2.2 (ast), and the paper's two synthetic libraries, brew
/// (potion recipes) and space (intergalactic flight plans), whose trait
/// architectures deliberately mirror Diesel/Bevy/Axum so study tasks are
/// comparable without prior-library-knowledge confounds (Section 5.1.1).
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace argus;

std::vector<CorpusEntry> argus::astEntries() {
  std::vector<CorpusEntry> Entries;

  // 10. The Figure 3 program: a blanket AstAssocs impl whose bound loops
  // through AssocData back into AstAssocs.
  Entries.push_back(CorpusEntry{
      "ast-assoc-recursion", "ast",
      "Blanket impl and associated-type bound form an inference cycle "
      "(Figure 3 of the paper)",
      R"(
trait AstAssocs: Sized { type Data: AssocData<Self>; }
trait AssocData<A> where A: AstAssocs;
struct EmptyNode;
struct Statement<A>;
impl<Data> AstAssocs for Data where Data: AssocData<Self> {
  type Data = Data;
}
impl<A> AssocData<A> for EmptyNode where A: AstAssocs;
// let s: Statement<EmptyNode> = Statement(..);
goal EmptyNode: AstAssocs;
root_cause EmptyNode: AstAssocs;
)"});

  // 11. A growing-type overflow: each step wraps the subject in Box, so
  // the goal never repeats exactly and the depth limit fires instead of
  // the cycle detector.
  Entries.push_back(CorpusEntry{
      "ast-box-growth", "ast",
      "Blanket impl recurses through an ever-growing Box type",
      R"(
#[external] struct alloc::Box<T>;
struct Leaf;
trait DeepSerialize;
impl<T> DeepSerialize for T where Box<T>: DeepSerialize;
goal Leaf: DeepSerialize;
root_cause Leaf: DeepSerialize;
)"});

  return Entries;
}

namespace {

const char *BrewPrelude = R"(
// --- brew library (synthetic, treated as external) ---
#[external] struct brew::Recipe<I1, I2>;
#[external] struct brew::Cauldron;
#[external] struct brew::Potent;
#[external] struct brew::Mild;
#[external] struct brew::IsStirStep;
#[external] struct brew::IsNamedStep;

#[external] trait brew::Ingredient { type Potency; }
#[external] trait brew::Compatible<Other>;
#[external] trait brew::Brewable;
#[external] trait brew::NamedStep;
#[external, fn_trait] trait brew::StirFn<Sig>;
#[external] trait brew::BrewStep<Marker>;

#[external] impl<I1, I2> Brewable for Recipe<I1, I2>
  where I1: Ingredient, I2: Ingredient, I1: Compatible<I2>;

// Registry plumbing behind named steps.
#[external] trait brew::RegisteredStep;
#[external] impl<S> NamedStep for S where S: RegisteredStep;

// Mirror of Bevy's marker trick: a brewing step is either a stirring
// function over a cauldron or a named step. The named alternative is
// assembled first (impl declaration order).
#[external] impl<S> BrewStep<IsNamedStep> for S where S: NamedStep;
#[external] impl<F> BrewStep<(IsStirStep, fn(Cauldron))> for F
  where F: StirFn<fn(Cauldron)>;
)";

const char *SpacePrelude = R"(
// --- space library (synthetic, treated as external) ---
#[external] struct space::FlightPlan<From, To>;
#[external] struct space::Relay<N>;
#[external] struct space::Succ<N>;
#[external] struct space::Zero;
#[external] struct space::Sufficient;
#[external] struct space::Insufficient;

#[external] trait space::Body;
#[external] trait space::ReachableFrom<Origin>;
#[external] trait space::Plottable;
#[external] trait space::HasFuel { type Level; }
#[external] trait space::Linked;

#[external] impl<From, To> Plottable for FlightPlan<From, To>
  where From: Body, To: Body, To: ReachableFrom<From>,
        <FlightPlan<From, To> as HasFuel>::Level == Sufficient;
)";

} // namespace

std::vector<CorpusEntry> argus::brewEntries() {
  std::vector<CorpusEntry> Entries;

  // 12. Two ingredients that were never declared compatible.
  Entries.push_back(CorpusEntry{
      "brew-incompatible-ingredients", "brew",
      "Recipe combines two ingredients with no Compatible impl",
      std::string(BrewPrelude) + R"(
struct Toadstool;
struct Nightshade;
impl Ingredient for Toadstool { type Potency = Potent; }
impl Ingredient for Nightshade { type Potency = Potent; }
// brew(Recipe::of(toadstool, nightshade))
goal Recipe<Toadstool, Nightshade>: Brewable;
root_cause Toadstool: Compatible<Nightshade>;
)"});

  // 13. The Bevy-style branch point: a stirring function with the wrong
  // parameter type fails StirFn, and the named-step branch fails too.
  Entries.push_back(CorpusEntry{
      "brew-stir-step-signature", "brew",
      "Stir step takes a Potion argument instead of a Cauldron",
      std::string(BrewPrelude) + R"(
struct Potion;
// fn stir(p: Potion) { .. }  -- must take the Cauldron.
fn stir(Potion);
goal stir: BrewStep<?M>;
root_cause stir: StirFn<fn(Cauldron)>;
)"});

  // 14. A recipe whose potency projection disagrees with the required
  // one (mirrors the Diesel Count == Once mismatch).
  Entries.push_back(CorpusEntry{
      "brew-potency-mismatch", "brew",
      "Recipe requires a Potent primary ingredient but got a Mild one",
      std::string(BrewPrelude) + R"(
#[external] trait brew::StrongBrew;
#[external] impl<I1, I2> StrongBrew for Recipe<I1, I2>
  where I1: Ingredient, I2: Ingredient,
        <I1 as Ingredient>::Potency == Potent;
struct Chamomile;
struct Lavender;
impl Ingredient for Chamomile { type Potency = Mild; }
impl Ingredient for Lavender { type Potency = Mild; }
impl Compatible<Lavender> for Chamomile;
goal Recipe<Chamomile, Lavender>: StrongBrew;
root_cause <Chamomile as Ingredient>::Potency == Potent;
)"});

  return Entries;
}

std::vector<CorpusEntry> argus::spaceEntries() {
  std::vector<CorpusEntry> Entries;

  // 15. A flight plan between bodies with no reachability impl.
  Entries.push_back(CorpusEntry{
      "space-unreachable-route", "space",
      "Flight plan requires Mars: ReachableFrom<Earth>, which is not "
      "declared",
      std::string(SpacePrelude) + R"(
struct Earth;
struct Mars;
struct Luna;
impl Body for Earth;
impl Body for Mars;
impl Body for Luna;
impl ReachableFrom<Earth> for Luna;
#[external] impl<From, To> HasFuel for FlightPlan<From, To> {
  type Level = Sufficient;
}
// plot(FlightPlan::new(earth, mars))
goal FlightPlan<Earth, Mars>: Plottable;
root_cause Mars: ReachableFrom<Earth>;
)"});

  // 16. Reachable route, but the fuel projection comes out Insufficient
  // (mirrors the Diesel/brew projection mismatches).
  Entries.push_back(CorpusEntry{
      "space-fuel-projection", "space",
      "Route is reachable but the fuel level projects to Insufficient",
      std::string(SpacePrelude) + R"(
struct Earth;
struct Neptune;
impl Body for Earth;
impl Body for Neptune;
impl ReachableFrom<Earth> for Neptune;
#[external] impl<From, To> HasFuel for FlightPlan<From, To> {
  type Level = Insufficient;
}
goal FlightPlan<Earth, Neptune>: Plottable;
root_cause <FlightPlan<Earth, Neptune> as HasFuel>::Level == Sufficient;
)"});

  // 17. Relay chains that recurse without a base case: Linked for
  // Relay<N> requires Linked for Relay<Succ<N>>.
  Entries.push_back(CorpusEntry{
      "space-relay-overflow", "space",
      "Relay chain recursion has no base case and overflows",
      std::string(SpacePrelude) + R"(
#[external] impl<N> Linked for Relay<N> where Relay<Succ<N>>: Linked;
goal Relay<Zero>: Linked;
root_cause Relay<Zero>: Linked;
)"});

  return Entries;
}
