# Empty dependencies file for bevy_errant_param.
# This may be replaced when dependencies are built.
