file(REMOVE_RECURSE
  "CMakeFiles/bevy_errant_param.dir/bevy_errant_param.cpp.o"
  "CMakeFiles/bevy_errant_param.dir/bevy_errant_param.cpp.o.d"
  "bevy_errant_param"
  "bevy_errant_param.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bevy_errant_param.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
