file(REMOVE_RECURSE
  "CMakeFiles/diesel_missing_join.dir/diesel_missing_join.cpp.o"
  "CMakeFiles/diesel_missing_join.dir/diesel_missing_join.cpp.o.d"
  "diesel_missing_join"
  "diesel_missing_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diesel_missing_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
