# Empty compiler generated dependencies file for diesel_missing_join.
# This may be replaced when dependencies are built.
