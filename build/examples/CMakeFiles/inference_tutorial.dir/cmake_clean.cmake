file(REMOVE_RECURSE
  "CMakeFiles/inference_tutorial.dir/inference_tutorial.cpp.o"
  "CMakeFiles/inference_tutorial.dir/inference_tutorial.cpp.o.d"
  "inference_tutorial"
  "inference_tutorial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inference_tutorial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
