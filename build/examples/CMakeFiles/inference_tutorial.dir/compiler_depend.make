# Empty compiler generated dependencies file for inference_tutorial.
# This may be replaced when dependencies are built.
