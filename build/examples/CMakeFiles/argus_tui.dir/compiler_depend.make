# Empty compiler generated dependencies file for argus_tui.
# This may be replaced when dependencies are built.
