file(REMOVE_RECURSE
  "CMakeFiles/argus_tui.dir/argus_tui.cpp.o"
  "CMakeFiles/argus_tui.dir/argus_tui.cpp.o.d"
  "argus_tui"
  "argus_tui.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argus_tui.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
