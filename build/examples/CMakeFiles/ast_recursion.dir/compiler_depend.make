# Empty compiler generated dependencies file for ast_recursion.
# This may be replaced when dependencies are built.
