file(REMOVE_RECURSE
  "CMakeFiles/ast_recursion.dir/ast_recursion.cpp.o"
  "CMakeFiles/ast_recursion.dir/ast_recursion.cpp.o.d"
  "ast_recursion"
  "ast_recursion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ast_recursion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
