# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_tests[1]_include.cmake")
include("/root/repo/build/tests/tlang_tests[1]_include.cmake")
include("/root/repo/build/tests/solver_tests[1]_include.cmake")
include("/root/repo/build/tests/extract_tests[1]_include.cmake")
include("/root/repo/build/tests/analysis_tests[1]_include.cmake")
include("/root/repo/build/tests/diagnostics_tests[1]_include.cmake")
include("/root/repo/build/tests/interface_tests[1]_include.cmake")
include("/root/repo/build/tests/corpus_tests[1]_include.cmake")
include("/root/repo/build/tests/study_tests[1]_include.cmake")
include("/root/repo/build/tests/cli_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
