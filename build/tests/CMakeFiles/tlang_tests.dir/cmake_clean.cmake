file(REMOVE_RECURSE
  "CMakeFiles/tlang_tests.dir/tlang/LexerTests.cpp.o"
  "CMakeFiles/tlang_tests.dir/tlang/LexerTests.cpp.o.d"
  "CMakeFiles/tlang_tests.dir/tlang/ParserFuzzTests.cpp.o"
  "CMakeFiles/tlang_tests.dir/tlang/ParserFuzzTests.cpp.o.d"
  "CMakeFiles/tlang_tests.dir/tlang/ParserTests.cpp.o"
  "CMakeFiles/tlang_tests.dir/tlang/ParserTests.cpp.o.d"
  "CMakeFiles/tlang_tests.dir/tlang/PrinterTests.cpp.o"
  "CMakeFiles/tlang_tests.dir/tlang/PrinterTests.cpp.o.d"
  "CMakeFiles/tlang_tests.dir/tlang/ProgramTests.cpp.o"
  "CMakeFiles/tlang_tests.dir/tlang/ProgramTests.cpp.o.d"
  "CMakeFiles/tlang_tests.dir/tlang/TypeArenaTests.cpp.o"
  "CMakeFiles/tlang_tests.dir/tlang/TypeArenaTests.cpp.o.d"
  "tlang_tests"
  "tlang_tests.pdb"
  "tlang_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlang_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
