# Empty compiler generated dependencies file for tlang_tests.
# This may be replaced when dependencies are built.
