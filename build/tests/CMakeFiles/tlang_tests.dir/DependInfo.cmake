
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tlang/LexerTests.cpp" "tests/CMakeFiles/tlang_tests.dir/tlang/LexerTests.cpp.o" "gcc" "tests/CMakeFiles/tlang_tests.dir/tlang/LexerTests.cpp.o.d"
  "/root/repo/tests/tlang/ParserFuzzTests.cpp" "tests/CMakeFiles/tlang_tests.dir/tlang/ParserFuzzTests.cpp.o" "gcc" "tests/CMakeFiles/tlang_tests.dir/tlang/ParserFuzzTests.cpp.o.d"
  "/root/repo/tests/tlang/ParserTests.cpp" "tests/CMakeFiles/tlang_tests.dir/tlang/ParserTests.cpp.o" "gcc" "tests/CMakeFiles/tlang_tests.dir/tlang/ParserTests.cpp.o.d"
  "/root/repo/tests/tlang/PrinterTests.cpp" "tests/CMakeFiles/tlang_tests.dir/tlang/PrinterTests.cpp.o" "gcc" "tests/CMakeFiles/tlang_tests.dir/tlang/PrinterTests.cpp.o.d"
  "/root/repo/tests/tlang/ProgramTests.cpp" "tests/CMakeFiles/tlang_tests.dir/tlang/ProgramTests.cpp.o" "gcc" "tests/CMakeFiles/tlang_tests.dir/tlang/ProgramTests.cpp.o.d"
  "/root/repo/tests/tlang/TypeArenaTests.cpp" "tests/CMakeFiles/tlang_tests.dir/tlang/TypeArenaTests.cpp.o" "gcc" "tests/CMakeFiles/tlang_tests.dir/tlang/TypeArenaTests.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/extract/CMakeFiles/argus_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/argus_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/tlang/CMakeFiles/argus_tlang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/argus_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
