# Empty compiler generated dependencies file for study_tests.
# This may be replaced when dependencies are built.
