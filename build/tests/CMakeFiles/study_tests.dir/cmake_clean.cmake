file(REMOVE_RECURSE
  "CMakeFiles/study_tests.dir/study/StudyTests.cpp.o"
  "CMakeFiles/study_tests.dir/study/StudyTests.cpp.o.d"
  "study_tests"
  "study_tests.pdb"
  "study_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
