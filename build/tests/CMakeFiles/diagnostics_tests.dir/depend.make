# Empty dependencies file for diagnostics_tests.
# This may be replaced when dependencies are built.
