file(REMOVE_RECURSE
  "CMakeFiles/diagnostics_tests.dir/diagnostics/DiagnosticsTests.cpp.o"
  "CMakeFiles/diagnostics_tests.dir/diagnostics/DiagnosticsTests.cpp.o.d"
  "diagnostics_tests"
  "diagnostics_tests.pdb"
  "diagnostics_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnostics_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
