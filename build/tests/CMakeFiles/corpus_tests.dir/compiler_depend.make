# Empty compiler generated dependencies file for corpus_tests.
# This may be replaced when dependencies are built.
