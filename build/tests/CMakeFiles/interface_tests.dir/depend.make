# Empty dependencies file for interface_tests.
# This may be replaced when dependencies are built.
