file(REMOVE_RECURSE
  "CMakeFiles/interface_tests.dir/interface/HTMLExportTests.cpp.o"
  "CMakeFiles/interface_tests.dir/interface/HTMLExportTests.cpp.o.d"
  "CMakeFiles/interface_tests.dir/interface/ViewJSONTests.cpp.o"
  "CMakeFiles/interface_tests.dir/interface/ViewJSONTests.cpp.o.d"
  "CMakeFiles/interface_tests.dir/interface/ViewTests.cpp.o"
  "CMakeFiles/interface_tests.dir/interface/ViewTests.cpp.o.d"
  "interface_tests"
  "interface_tests.pdb"
  "interface_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interface_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
