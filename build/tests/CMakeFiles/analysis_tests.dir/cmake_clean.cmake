file(REMOVE_RECURSE
  "CMakeFiles/analysis_tests.dir/analysis/DNFTests.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/DNFTests.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/GoalKindTests.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/GoalKindTests.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/InertiaTests.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/InertiaTests.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/SuggestionsTests.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/SuggestionsTests.cpp.o.d"
  "analysis_tests"
  "analysis_tests.pdb"
  "analysis_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
