
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/extract/ExtractTests.cpp" "tests/CMakeFiles/extract_tests.dir/extract/ExtractTests.cpp.o" "gcc" "tests/CMakeFiles/extract_tests.dir/extract/ExtractTests.cpp.o.d"
  "/root/repo/tests/extract/InferenceTreeTests.cpp" "tests/CMakeFiles/extract_tests.dir/extract/InferenceTreeTests.cpp.o" "gcc" "tests/CMakeFiles/extract_tests.dir/extract/InferenceTreeTests.cpp.o.d"
  "/root/repo/tests/extract/TreeJSONTests.cpp" "tests/CMakeFiles/extract_tests.dir/extract/TreeJSONTests.cpp.o" "gcc" "tests/CMakeFiles/extract_tests.dir/extract/TreeJSONTests.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/extract/CMakeFiles/argus_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/argus_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/tlang/CMakeFiles/argus_tlang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/argus_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
