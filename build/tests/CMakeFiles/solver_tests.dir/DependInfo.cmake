
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/solver/CoherenceTests.cpp" "tests/CMakeFiles/solver_tests.dir/solver/CoherenceTests.cpp.o" "gcc" "tests/CMakeFiles/solver_tests.dir/solver/CoherenceTests.cpp.o.d"
  "/root/repo/tests/solver/InferContextTests.cpp" "tests/CMakeFiles/solver_tests.dir/solver/InferContextTests.cpp.o" "gcc" "tests/CMakeFiles/solver_tests.dir/solver/InferContextTests.cpp.o.d"
  "/root/repo/tests/solver/SolverPropertyTests.cpp" "tests/CMakeFiles/solver_tests.dir/solver/SolverPropertyTests.cpp.o" "gcc" "tests/CMakeFiles/solver_tests.dir/solver/SolverPropertyTests.cpp.o.d"
  "/root/repo/tests/solver/SolverTests.cpp" "tests/CMakeFiles/solver_tests.dir/solver/SolverTests.cpp.o" "gcc" "tests/CMakeFiles/solver_tests.dir/solver/SolverTests.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/extract/CMakeFiles/argus_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/argus_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/tlang/CMakeFiles/argus_tlang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/argus_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
