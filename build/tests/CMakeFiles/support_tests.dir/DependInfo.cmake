
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/support/JSONTests.cpp" "tests/CMakeFiles/support_tests.dir/support/JSONTests.cpp.o" "gcc" "tests/CMakeFiles/support_tests.dir/support/JSONTests.cpp.o.d"
  "/root/repo/tests/support/RandomTests.cpp" "tests/CMakeFiles/support_tests.dir/support/RandomTests.cpp.o" "gcc" "tests/CMakeFiles/support_tests.dir/support/RandomTests.cpp.o.d"
  "/root/repo/tests/support/SourceManagerTests.cpp" "tests/CMakeFiles/support_tests.dir/support/SourceManagerTests.cpp.o" "gcc" "tests/CMakeFiles/support_tests.dir/support/SourceManagerTests.cpp.o.d"
  "/root/repo/tests/support/StatisticsTests.cpp" "tests/CMakeFiles/support_tests.dir/support/StatisticsTests.cpp.o" "gcc" "tests/CMakeFiles/support_tests.dir/support/StatisticsTests.cpp.o.d"
  "/root/repo/tests/support/StringInternerTests.cpp" "tests/CMakeFiles/support_tests.dir/support/StringInternerTests.cpp.o" "gcc" "tests/CMakeFiles/support_tests.dir/support/StringInternerTests.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/extract/CMakeFiles/argus_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/argus_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/tlang/CMakeFiles/argus_tlang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/argus_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
