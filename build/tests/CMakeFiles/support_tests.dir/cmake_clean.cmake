file(REMOVE_RECURSE
  "CMakeFiles/support_tests.dir/support/JSONTests.cpp.o"
  "CMakeFiles/support_tests.dir/support/JSONTests.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/RandomTests.cpp.o"
  "CMakeFiles/support_tests.dir/support/RandomTests.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/SourceManagerTests.cpp.o"
  "CMakeFiles/support_tests.dir/support/SourceManagerTests.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/StatisticsTests.cpp.o"
  "CMakeFiles/support_tests.dir/support/StatisticsTests.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/StringInternerTests.cpp.o"
  "CMakeFiles/support_tests.dir/support/StringInternerTests.cpp.o.d"
  "support_tests"
  "support_tests.pdb"
  "support_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
