# Empty dependencies file for bench_fig11_study.
# This may be replaced when dependencies are built.
