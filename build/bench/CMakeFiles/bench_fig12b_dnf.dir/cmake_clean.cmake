file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12b_dnf.dir/bench_fig12b_dnf.cpp.o"
  "CMakeFiles/bench_fig12b_dnf.dir/bench_fig12b_dnf.cpp.o.d"
  "bench_fig12b_dnf"
  "bench_fig12b_dnf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12b_dnf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
