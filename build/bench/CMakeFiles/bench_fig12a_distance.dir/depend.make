# Empty dependencies file for bench_fig12a_distance.
# This may be replaced when dependencies are built.
