file(REMOVE_RECURSE
  "CMakeFiles/bench_study_sensitivity.dir/bench_study_sensitivity.cpp.o"
  "CMakeFiles/bench_study_sensitivity.dir/bench_study_sensitivity.cpp.o.d"
  "bench_study_sensitivity"
  "bench_study_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_study_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
