# Empty dependencies file for bench_study_sensitivity.
# This may be replaced when dependencies are built.
