# Empty compiler generated dependencies file for argus.
# This may be replaced when dependencies are built.
