file(REMOVE_RECURSE
  "CMakeFiles/argus.dir/argus_cli.cpp.o"
  "CMakeFiles/argus.dir/argus_cli.cpp.o.d"
  "argus"
  "argus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
