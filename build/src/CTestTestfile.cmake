# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("tlang")
subdirs("solver")
subdirs("extract")
subdirs("analysis")
subdirs("diagnostics")
subdirs("interface")
subdirs("corpus")
subdirs("study")
