# Empty compiler generated dependencies file for argus_extract.
# This may be replaced when dependencies are built.
