
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/extract/Extract.cpp" "src/extract/CMakeFiles/argus_extract.dir/Extract.cpp.o" "gcc" "src/extract/CMakeFiles/argus_extract.dir/Extract.cpp.o.d"
  "/root/repo/src/extract/InferenceTree.cpp" "src/extract/CMakeFiles/argus_extract.dir/InferenceTree.cpp.o" "gcc" "src/extract/CMakeFiles/argus_extract.dir/InferenceTree.cpp.o.d"
  "/root/repo/src/extract/TreeJSON.cpp" "src/extract/CMakeFiles/argus_extract.dir/TreeJSON.cpp.o" "gcc" "src/extract/CMakeFiles/argus_extract.dir/TreeJSON.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/solver/CMakeFiles/argus_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/tlang/CMakeFiles/argus_tlang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/argus_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
