file(REMOVE_RECURSE
  "CMakeFiles/argus_extract.dir/Extract.cpp.o"
  "CMakeFiles/argus_extract.dir/Extract.cpp.o.d"
  "CMakeFiles/argus_extract.dir/InferenceTree.cpp.o"
  "CMakeFiles/argus_extract.dir/InferenceTree.cpp.o.d"
  "CMakeFiles/argus_extract.dir/TreeJSON.cpp.o"
  "CMakeFiles/argus_extract.dir/TreeJSON.cpp.o.d"
  "libargus_extract.a"
  "libargus_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argus_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
