file(REMOVE_RECURSE
  "libargus_extract.a"
)
