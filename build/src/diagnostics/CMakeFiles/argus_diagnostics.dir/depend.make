# Empty dependencies file for argus_diagnostics.
# This may be replaced when dependencies are built.
