file(REMOVE_RECURSE
  "CMakeFiles/argus_diagnostics.dir/Diagnostics.cpp.o"
  "CMakeFiles/argus_diagnostics.dir/Diagnostics.cpp.o.d"
  "libargus_diagnostics.a"
  "libargus_diagnostics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argus_diagnostics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
