file(REMOVE_RECURSE
  "libargus_diagnostics.a"
)
