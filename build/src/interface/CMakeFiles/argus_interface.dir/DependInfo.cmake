
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interface/HTMLExport.cpp" "src/interface/CMakeFiles/argus_interface.dir/HTMLExport.cpp.o" "gcc" "src/interface/CMakeFiles/argus_interface.dir/HTMLExport.cpp.o.d"
  "/root/repo/src/interface/View.cpp" "src/interface/CMakeFiles/argus_interface.dir/View.cpp.o" "gcc" "src/interface/CMakeFiles/argus_interface.dir/View.cpp.o.d"
  "/root/repo/src/interface/ViewJSON.cpp" "src/interface/CMakeFiles/argus_interface.dir/ViewJSON.cpp.o" "gcc" "src/interface/CMakeFiles/argus_interface.dir/ViewJSON.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/argus_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/diagnostics/CMakeFiles/argus_diagnostics.dir/DependInfo.cmake"
  "/root/repo/build/src/extract/CMakeFiles/argus_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/argus_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/tlang/CMakeFiles/argus_tlang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/argus_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
