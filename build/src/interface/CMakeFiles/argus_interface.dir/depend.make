# Empty dependencies file for argus_interface.
# This may be replaced when dependencies are built.
