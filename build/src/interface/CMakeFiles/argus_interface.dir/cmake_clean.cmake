file(REMOVE_RECURSE
  "CMakeFiles/argus_interface.dir/HTMLExport.cpp.o"
  "CMakeFiles/argus_interface.dir/HTMLExport.cpp.o.d"
  "CMakeFiles/argus_interface.dir/View.cpp.o"
  "CMakeFiles/argus_interface.dir/View.cpp.o.d"
  "CMakeFiles/argus_interface.dir/ViewJSON.cpp.o"
  "CMakeFiles/argus_interface.dir/ViewJSON.cpp.o.d"
  "libargus_interface.a"
  "libargus_interface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argus_interface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
