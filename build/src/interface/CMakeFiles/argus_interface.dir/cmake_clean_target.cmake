file(REMOVE_RECURSE
  "libargus_interface.a"
)
