file(REMOVE_RECURSE
  "CMakeFiles/argus_study.dir/Simulator.cpp.o"
  "CMakeFiles/argus_study.dir/Simulator.cpp.o.d"
  "CMakeFiles/argus_study.dir/StudyTasks.cpp.o"
  "CMakeFiles/argus_study.dir/StudyTasks.cpp.o.d"
  "libargus_study.a"
  "libargus_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argus_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
