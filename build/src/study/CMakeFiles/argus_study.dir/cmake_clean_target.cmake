file(REMOVE_RECURSE
  "libargus_study.a"
)
