# Empty dependencies file for argus_study.
# This may be replaced when dependencies are built.
