# Empty dependencies file for argus_support.
# This may be replaced when dependencies are built.
