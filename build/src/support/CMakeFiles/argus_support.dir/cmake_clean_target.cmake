file(REMOVE_RECURSE
  "libargus_support.a"
)
