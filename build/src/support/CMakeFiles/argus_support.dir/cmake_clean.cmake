file(REMOVE_RECURSE
  "CMakeFiles/argus_support.dir/JSON.cpp.o"
  "CMakeFiles/argus_support.dir/JSON.cpp.o.d"
  "CMakeFiles/argus_support.dir/SourceManager.cpp.o"
  "CMakeFiles/argus_support.dir/SourceManager.cpp.o.d"
  "CMakeFiles/argus_support.dir/Statistics.cpp.o"
  "CMakeFiles/argus_support.dir/Statistics.cpp.o.d"
  "CMakeFiles/argus_support.dir/StringInterner.cpp.o"
  "CMakeFiles/argus_support.dir/StringInterner.cpp.o.d"
  "libargus_support.a"
  "libargus_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argus_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
