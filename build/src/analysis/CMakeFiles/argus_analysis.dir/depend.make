# Empty dependencies file for argus_analysis.
# This may be replaced when dependencies are built.
