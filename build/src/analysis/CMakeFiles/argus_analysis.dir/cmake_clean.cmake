file(REMOVE_RECURSE
  "CMakeFiles/argus_analysis.dir/CompilerDistance.cpp.o"
  "CMakeFiles/argus_analysis.dir/CompilerDistance.cpp.o.d"
  "CMakeFiles/argus_analysis.dir/DNF.cpp.o"
  "CMakeFiles/argus_analysis.dir/DNF.cpp.o.d"
  "CMakeFiles/argus_analysis.dir/GoalKind.cpp.o"
  "CMakeFiles/argus_analysis.dir/GoalKind.cpp.o.d"
  "CMakeFiles/argus_analysis.dir/Inertia.cpp.o"
  "CMakeFiles/argus_analysis.dir/Inertia.cpp.o.d"
  "CMakeFiles/argus_analysis.dir/Suggestions.cpp.o"
  "CMakeFiles/argus_analysis.dir/Suggestions.cpp.o.d"
  "libargus_analysis.a"
  "libargus_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argus_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
