file(REMOVE_RECURSE
  "libargus_analysis.a"
)
