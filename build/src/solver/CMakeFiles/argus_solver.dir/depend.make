# Empty dependencies file for argus_solver.
# This may be replaced when dependencies are built.
