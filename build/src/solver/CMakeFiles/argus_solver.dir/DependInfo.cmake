
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/Coherence.cpp" "src/solver/CMakeFiles/argus_solver.dir/Coherence.cpp.o" "gcc" "src/solver/CMakeFiles/argus_solver.dir/Coherence.cpp.o.d"
  "/root/repo/src/solver/InferContext.cpp" "src/solver/CMakeFiles/argus_solver.dir/InferContext.cpp.o" "gcc" "src/solver/CMakeFiles/argus_solver.dir/InferContext.cpp.o.d"
  "/root/repo/src/solver/ProofTree.cpp" "src/solver/CMakeFiles/argus_solver.dir/ProofTree.cpp.o" "gcc" "src/solver/CMakeFiles/argus_solver.dir/ProofTree.cpp.o.d"
  "/root/repo/src/solver/Solver.cpp" "src/solver/CMakeFiles/argus_solver.dir/Solver.cpp.o" "gcc" "src/solver/CMakeFiles/argus_solver.dir/Solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tlang/CMakeFiles/argus_tlang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/argus_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
