file(REMOVE_RECURSE
  "libargus_solver.a"
)
