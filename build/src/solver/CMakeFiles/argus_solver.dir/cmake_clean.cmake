file(REMOVE_RECURSE
  "CMakeFiles/argus_solver.dir/Coherence.cpp.o"
  "CMakeFiles/argus_solver.dir/Coherence.cpp.o.d"
  "CMakeFiles/argus_solver.dir/InferContext.cpp.o"
  "CMakeFiles/argus_solver.dir/InferContext.cpp.o.d"
  "CMakeFiles/argus_solver.dir/ProofTree.cpp.o"
  "CMakeFiles/argus_solver.dir/ProofTree.cpp.o.d"
  "CMakeFiles/argus_solver.dir/Solver.cpp.o"
  "CMakeFiles/argus_solver.dir/Solver.cpp.o.d"
  "libargus_solver.a"
  "libargus_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argus_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
