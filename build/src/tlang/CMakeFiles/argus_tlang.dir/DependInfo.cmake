
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tlang/Lexer.cpp" "src/tlang/CMakeFiles/argus_tlang.dir/Lexer.cpp.o" "gcc" "src/tlang/CMakeFiles/argus_tlang.dir/Lexer.cpp.o.d"
  "/root/repo/src/tlang/Parser.cpp" "src/tlang/CMakeFiles/argus_tlang.dir/Parser.cpp.o" "gcc" "src/tlang/CMakeFiles/argus_tlang.dir/Parser.cpp.o.d"
  "/root/repo/src/tlang/Predicate.cpp" "src/tlang/CMakeFiles/argus_tlang.dir/Predicate.cpp.o" "gcc" "src/tlang/CMakeFiles/argus_tlang.dir/Predicate.cpp.o.d"
  "/root/repo/src/tlang/Printer.cpp" "src/tlang/CMakeFiles/argus_tlang.dir/Printer.cpp.o" "gcc" "src/tlang/CMakeFiles/argus_tlang.dir/Printer.cpp.o.d"
  "/root/repo/src/tlang/Program.cpp" "src/tlang/CMakeFiles/argus_tlang.dir/Program.cpp.o" "gcc" "src/tlang/CMakeFiles/argus_tlang.dir/Program.cpp.o.d"
  "/root/repo/src/tlang/TypeArena.cpp" "src/tlang/CMakeFiles/argus_tlang.dir/TypeArena.cpp.o" "gcc" "src/tlang/CMakeFiles/argus_tlang.dir/TypeArena.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/argus_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
