file(REMOVE_RECURSE
  "CMakeFiles/argus_tlang.dir/Lexer.cpp.o"
  "CMakeFiles/argus_tlang.dir/Lexer.cpp.o.d"
  "CMakeFiles/argus_tlang.dir/Parser.cpp.o"
  "CMakeFiles/argus_tlang.dir/Parser.cpp.o.d"
  "CMakeFiles/argus_tlang.dir/Predicate.cpp.o"
  "CMakeFiles/argus_tlang.dir/Predicate.cpp.o.d"
  "CMakeFiles/argus_tlang.dir/Printer.cpp.o"
  "CMakeFiles/argus_tlang.dir/Printer.cpp.o.d"
  "CMakeFiles/argus_tlang.dir/Program.cpp.o"
  "CMakeFiles/argus_tlang.dir/Program.cpp.o.d"
  "CMakeFiles/argus_tlang.dir/TypeArena.cpp.o"
  "CMakeFiles/argus_tlang.dir/TypeArena.cpp.o.d"
  "libargus_tlang.a"
  "libargus_tlang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argus_tlang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
