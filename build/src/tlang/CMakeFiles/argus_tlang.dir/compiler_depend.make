# Empty compiler generated dependencies file for argus_tlang.
# This may be replaced when dependencies are built.
