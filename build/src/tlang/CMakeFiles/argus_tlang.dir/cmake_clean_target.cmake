file(REMOVE_RECURSE
  "libargus_tlang.a"
)
