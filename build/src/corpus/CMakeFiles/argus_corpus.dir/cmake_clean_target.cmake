file(REMOVE_RECURSE
  "libargus_corpus.a"
)
