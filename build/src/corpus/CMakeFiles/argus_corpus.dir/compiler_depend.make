# Empty compiler generated dependencies file for argus_corpus.
# This may be replaced when dependencies are built.
