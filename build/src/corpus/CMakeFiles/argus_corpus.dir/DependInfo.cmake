
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/Corpus.cpp" "src/corpus/CMakeFiles/argus_corpus.dir/Corpus.cpp.o" "gcc" "src/corpus/CMakeFiles/argus_corpus.dir/Corpus.cpp.o.d"
  "/root/repo/src/corpus/CorpusAxum.cpp" "src/corpus/CMakeFiles/argus_corpus.dir/CorpusAxum.cpp.o" "gcc" "src/corpus/CMakeFiles/argus_corpus.dir/CorpusAxum.cpp.o.d"
  "/root/repo/src/corpus/CorpusBevy.cpp" "src/corpus/CMakeFiles/argus_corpus.dir/CorpusBevy.cpp.o" "gcc" "src/corpus/CMakeFiles/argus_corpus.dir/CorpusBevy.cpp.o.d"
  "/root/repo/src/corpus/CorpusDiesel.cpp" "src/corpus/CMakeFiles/argus_corpus.dir/CorpusDiesel.cpp.o" "gcc" "src/corpus/CMakeFiles/argus_corpus.dir/CorpusDiesel.cpp.o.d"
  "/root/repo/src/corpus/CorpusSynthetic.cpp" "src/corpus/CMakeFiles/argus_corpus.dir/CorpusSynthetic.cpp.o" "gcc" "src/corpus/CMakeFiles/argus_corpus.dir/CorpusSynthetic.cpp.o.d"
  "/root/repo/src/corpus/Generator.cpp" "src/corpus/CMakeFiles/argus_corpus.dir/Generator.cpp.o" "gcc" "src/corpus/CMakeFiles/argus_corpus.dir/Generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/extract/CMakeFiles/argus_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/argus_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/tlang/CMakeFiles/argus_tlang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/argus_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
