file(REMOVE_RECURSE
  "CMakeFiles/argus_corpus.dir/Corpus.cpp.o"
  "CMakeFiles/argus_corpus.dir/Corpus.cpp.o.d"
  "CMakeFiles/argus_corpus.dir/CorpusAxum.cpp.o"
  "CMakeFiles/argus_corpus.dir/CorpusAxum.cpp.o.d"
  "CMakeFiles/argus_corpus.dir/CorpusBevy.cpp.o"
  "CMakeFiles/argus_corpus.dir/CorpusBevy.cpp.o.d"
  "CMakeFiles/argus_corpus.dir/CorpusDiesel.cpp.o"
  "CMakeFiles/argus_corpus.dir/CorpusDiesel.cpp.o.d"
  "CMakeFiles/argus_corpus.dir/CorpusSynthetic.cpp.o"
  "CMakeFiles/argus_corpus.dir/CorpusSynthetic.cpp.o.d"
  "CMakeFiles/argus_corpus.dir/Generator.cpp.o"
  "CMakeFiles/argus_corpus.dir/Generator.cpp.o.d"
  "libargus_corpus.a"
  "libargus_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argus_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
